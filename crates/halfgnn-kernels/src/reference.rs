//! Serial `f64` reference implementations — the ground truth every kernel
//! is validated against. These are deliberately simple and allocation-happy;
//! they model exact arithmetic (up to f64), so comparisons against FP16
//! kernels use tolerance bands derived from half-precision ulps.

use crate::common::{EdgeWeights, Reduce};
use halfgnn_graph::Coo;
use halfgnn_half::Half;

/// `Y ← A_w · X` in f64 with optional per-row scaling applied after the
/// exact reduction (exact arithmetic never overflows, so placement is
/// irrelevant here).
pub fn spmm_f64(
    coo: &Coo,
    w: EdgeWeights,
    x: &[f64],
    f: usize,
    reduce: Reduce,
    row_scale: Option<&[f64]>,
) -> Vec<f64> {
    let n = coo.num_rows();
    assert_eq!(x.len(), coo.num_cols() * f, "X shape mismatch");
    let mut y = match reduce {
        Reduce::Sum => vec![0f64; n * f],
        Reduce::Max => vec![f64::NEG_INFINITY; n * f],
    };
    for e in 0..coo.nnz() {
        let (r, c) = coo.edge(e);
        let wv = w.get(e).to_f64();
        let xr = &x[c as usize * f..(c as usize + 1) * f];
        let yr = &mut y[r as usize * f..(r as usize + 1) * f];
        match reduce {
            Reduce::Sum => {
                for (yo, &xv) in yr.iter_mut().zip(xr) {
                    *yo += wv * xv;
                }
            }
            Reduce::Max => {
                for (yo, &xv) in yr.iter_mut().zip(xr) {
                    *yo = yo.max(wv * xv);
                }
            }
        }
    }
    if let Reduce::Max = reduce {
        // Rows with no edges: define as 0 like the kernels do.
        for r in 0..n {
            if y[r * f..(r + 1) * f].iter().all(|v| *v == f64::NEG_INFINITY) {
                y[r * f..(r + 1) * f].fill(0.0);
            }
        }
    }
    if let Some(s) = row_scale {
        for r in 0..n {
            for v in &mut y[r * f..(r + 1) * f] {
                *v *= s[r];
            }
        }
    }
    y
}

/// `out[e] ← dot(U[row(e)], V[col(e)])` in f64.
pub fn sddmm_f64(coo: &Coo, u: &[f64], v: &[f64], f: usize) -> Vec<f64> {
    assert_eq!(u.len(), coo.num_rows() * f, "U shape mismatch");
    assert_eq!(v.len(), coo.num_cols() * f, "V shape mismatch");
    (0..coo.nnz())
        .map(|e| {
            let (r, c) = coo.edge(e);
            let ur = &u[r as usize * f..(r as usize + 1) * f];
            let vc = &v[c as usize * f..(c as usize + 1) * f];
            ur.iter().zip(vc).map(|(a, b)| a * b).sum()
        })
        .collect()
}

/// Per-row reduction of an edge tensor in f64 — ground truth for
/// [`crate::halfgnn_spmm::edge_reduce`] and [`crate::edge_ops::edge_reduce_f32`].
/// Rows with no edges are defined as 0 under `Max`, matching the kernels.
pub fn edge_reduce_f64(coo: &Coo, w: &[f64], op: Reduce) -> Vec<f64> {
    assert_eq!(w.len(), coo.nnz(), "edge tensor shape mismatch");
    let n = coo.num_rows();
    let init = match op {
        Reduce::Sum => 0.0,
        Reduce::Max => f64::NEG_INFINITY,
    };
    let mut y = vec![init; n];
    let mut touched = vec![false; n];
    for (e, &we) in w.iter().enumerate() {
        let (r, _) = coo.edge(e);
        let r = r as usize;
        touched[r] = true;
        y[r] = match op {
            Reduce::Sum => y[r] + we,
            Reduce::Max => y[r].max(we),
        };
    }
    for r in 0..n {
        if !touched[r] {
            y[r] = 0.0;
        }
    }
    y
}

/// f64 `e_ij ← LeakyReLU(s_src[row] + s_dst[col])` — ground truth for
/// [`crate::edge_ops::src_dst_add_leakyrelu`].
pub fn src_dst_add_leakyrelu_f64(coo: &Coo, s_src: &[f64], s_dst: &[f64], slope: f64) -> Vec<f64> {
    assert_eq!(s_src.len(), coo.num_rows());
    assert_eq!(s_dst.len(), coo.num_cols());
    (0..coo.nnz())
        .map(|e| {
            let (r, c) = coo.edge(e);
            let v = s_src[r as usize] + s_dst[c as usize];
            if v >= 0.0 {
                v
            } else {
                v * slope
            }
        })
        .collect()
}

/// f64 `out ← exp(e − m[row])` — ground truth for
/// [`crate::edge_ops::sub_row_exp`] (both the shadow and AMP paths).
pub fn sub_row_exp_f64(coo: &Coo, e: &[f64], m: &[f64]) -> Vec<f64> {
    assert_eq!(e.len(), coo.nnz());
    assert_eq!(m.len(), coo.num_rows());
    (0..coo.nnz())
        .map(|ei| {
            let (r, _) = coo.edge(ei);
            (e[ei] - m[r as usize]).exp()
        })
        .collect()
}

/// f64 `α ← e / z[row]` — ground truth for [`crate::edge_ops::div_row`].
pub fn div_row_f64(coo: &Coo, e: &[f64], z: &[f64]) -> Vec<f64> {
    assert_eq!(e.len(), coo.nnz());
    assert_eq!(z.len(), coo.num_rows());
    (0..coo.nnz())
        .map(|ei| {
            let (r, _) = coo.edge(ei);
            e[ei] / z[r as usize]
        })
        .collect()
}

/// f64 elementwise edge product — ground truth for [`crate::edge_ops::mul`].
pub fn edge_mul_f64(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// f64 edge-softmax backward `δe ← α ⊙ (δα − t[row])` — ground truth for
/// [`crate::edge_ops::softmax_grad`].
pub fn softmax_grad_f64(coo: &Coo, alpha: &[f64], dalpha: &[f64], t: &[f64]) -> Vec<f64> {
    assert_eq!(alpha.len(), coo.nnz());
    assert_eq!(dalpha.len(), coo.nnz());
    assert_eq!(t.len(), coo.num_rows());
    (0..coo.nnz())
        .map(|ei| {
            let (r, _) = coo.edge(ei);
            alpha[ei] * (dalpha[ei] - t[r as usize])
        })
        .collect()
}

/// f64 LeakyReLU backward on edge logits — ground truth for
/// [`crate::edge_ops::leakyrelu_grad`].
pub fn leakyrelu_grad_f64(pre: &[f64], grad: &[f64], slope: f64) -> Vec<f64> {
    assert_eq!(pre.len(), grad.len());
    pre.iter().zip(grad).map(|(p, g)| if *p >= 0.0 { *g } else { *g * slope }).collect()
}

/// Convert a half tensor to the f64 reference domain.
pub fn half_to_f64(h: &[Half]) -> Vec<f64> {
    h.iter().map(|v| v.to_f64()).collect()
}

/// Convert an f32 tensor to the f64 reference domain.
pub fn f32_to_f64(x: &[f32]) -> Vec<f64> {
    x.iter().map(|&v| v as f64).collect()
}

/// Shared closeness predicate: `|g − w| ≤ abs + rel · max(|g|, |w|)`.
///
/// The relative term is **symmetric** in the two operands. Scaling by the
/// reference alone (`rel·|w|`) silently loosens when the kernel result is
/// too small and tightens when it is too large — e.g. a kernel that
/// underflows a 1e-3 reference to zero would pass a `rel`-only check scaled
/// by `w` but fail the same check scaled by `g`. `max(|a|,|b|)` treats both
/// failure directions identically. Non-finite `g` never passes against a
/// finite `w` (the error is infinite/NaN).
pub fn close(g: f64, w: f64, rel: f64, abs: f64) -> bool {
    if g == w {
        return true; // covers INF == INF where err would be NaN
    }
    if !g.is_finite() || !w.is_finite() {
        return false; // don't let rel·INF inflate the band to infinity
    }
    (g - w).abs() <= abs + rel * g.abs().max(w.abs())
}

/// Assert a half result matches an f64 reference within `rel` relative and
/// `abs` absolute tolerance (both needed: FP16 results near zero are
/// dominated by absolute rounding; large ones by relative). Uses the
/// symmetric [`close`] predicate.
pub fn assert_close_half(got: &[Half], want: &[f64], rel: f64, abs: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = g.to_f64();
        assert!(
            close(g, *w, rel, abs),
            "{what}[{i}]: got {g}, want {w}, err {:.3e} > tol {:.3e}",
            (g - w).abs(),
            abs + rel * g.abs().max(w.abs())
        );
    }
}

/// As [`assert_close_half`] for f32 kernels.
pub fn assert_close_f32(got: &[f32], want: &[f64], rel: f64, abs: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = *g as f64;
        assert!(
            close(g, *w, rel, abs),
            "{what}[{i}]: got {g}, want {w}, err {:.3e} > tol {:.3e}",
            (g - w).abs(),
            abs + rel * g.abs().max(w.abs())
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::Coo;

    fn fig2_graph() -> Coo {
        // The paper's Fig. 2 sample graph.
        Coo::from_edges(4, 4, &[(0, 1), (0, 2), (1, 0), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn spmm_sum_hand_checked() {
        let g = fig2_graph();
        // X row v = [v, 10v].
        let x: Vec<f64> = (0..4).flat_map(|v| [v as f64, 10.0 * v as f64]).collect();
        let y = spmm_f64(&g, EdgeWeights::Ones, &x, 2, Reduce::Sum, None);
        // Row 0 = X1 + X2 = [3, 30]; Row 2 = X1 + X3 = [4, 40].
        assert_eq!(&y[0..2], &[3.0, 30.0]);
        assert_eq!(&y[2..4], &[0.0, 0.0]);
        assert_eq!(&y[4..6], &[4.0, 40.0]);
        assert_eq!(&y[6..8], &[2.0, 20.0]);
    }

    #[test]
    fn spmm_weighted() {
        let g = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
        let w = [Half::from_f32(2.0), Half::from_f32(0.5)];
        let x = [1.0, 10.0];
        let y = spmm_f64(&g, EdgeWeights::Values(&w), &x, 1, Reduce::Sum, None);
        assert_eq!(y, vec![2.0 + 5.0, 0.0]);
    }

    #[test]
    fn spmm_max_and_empty_rows() {
        let g = Coo::from_edges(3, 3, &[(0, 1), (0, 2)]);
        let x = [5.0, -2.0, 7.0];
        let y = spmm_f64(&g, EdgeWeights::Ones, &x, 1, Reduce::Max, None);
        assert_eq!(y, vec![7.0, 0.0, 0.0]); // empty rows defined as 0
    }

    #[test]
    fn spmm_row_scale() {
        let g = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
        let x = [4.0, 8.0];
        let y = spmm_f64(&g, EdgeWeights::Ones, &x, 1, Reduce::Sum, Some(&[0.5, 1.0]));
        assert_eq!(y, vec![6.0, 0.0]);
    }

    #[test]
    fn sddmm_hand_checked() {
        let g = Coo::from_edges(2, 2, &[(0, 1), (1, 0)]);
        let u = [1.0, 2.0, 3.0, 4.0]; // rows [1,2],[3,4]
        let v = [10.0, 20.0, 30.0, 40.0];
        let out = sddmm_f64(&g, &u, &v, 2);
        // edge (0,1): [1,2]·[30,40] = 110; edge (1,0): [3,4]·[10,20] = 110.
        assert_eq!(out, vec![110.0, 110.0]);
    }

    #[test]
    fn edge_reduce_max_all_negative_and_empty() {
        let g = Coo::from_edges(3, 3, &[(0, 1), (0, 2), (2, 0)]);
        let w = [-5.0, -2.0, -7.0];
        let y = edge_reduce_f64(&g, &w, Reduce::Max);
        // Row 1 has no edges → 0; all-negative rows keep their true max.
        assert_eq!(y, vec![-2.0, 0.0, -7.0]);
    }

    #[test]
    fn symmetric_tolerance_rejects_underflow_to_zero() {
        // got = 0 vs want = 1e-3 must fail a pure-relative check: the old
        // `rel·|want|` form passed only because `want` was the larger side.
        assert!(!close(0.0, 1e-3, 0.5, 0.0));
        assert!(!close(1e-3, 0.0, 0.5, 0.0));
        assert!(close(1e-3, 0.0, 0.5, 1e-2)); // abs term still applies
        assert!(!close(f64::INFINITY, 1.0, 0.5, 1e6)); // nonfinite never passes vs finite
        assert!(!close(f64::NAN, 1.0, 0.5, 1e6));
        assert!(close(f64::INFINITY, f64::INFINITY, 0.0, 0.0));
    }

    #[test]
    fn tolerance_helpers() {
        let got = [Half::from_f32(1.0), Half::from_f32(2.001)];
        assert_close_half(&got, &[1.0, 2.0], 1e-2, 1e-3, "ok");
    }

    #[test]
    #[should_panic(expected = "err")]
    fn tolerance_helpers_catch_mismatch() {
        let got = [Half::from_f32(1.5)];
        assert_close_half(&got, &[1.0], 1e-3, 1e-3, "bad");
    }
}
