//! **HalfGNN's edge-parallel SDDMM** (§5.1): per-edge dot products with
//! configurable vector width.
//!
//! SDDMM reduces along the feature dimension, so inter-thread shuffle
//! rounds are unavoidable — and every round is an implicit memory barrier
//! that caps how many loads are in flight (§5.1.1). The proposed `half4` /
//! `half8` types attack exactly that: with `half8`, one thread covers 8
//! features, so F=32 needs only 4 threads → 2 shuffle rounds and 4× the
//! bytes in flight per load instruction; the half2-only design needs 16
//! threads → 4 rounds; a scalar-half design needs 32 → 5 rounds.
//!
//! Sub-warps (§4.1) keep idle lanes busy: when one edge needs fewer than 32
//! threads, the warp processes `32 / threads_per_edge` edges concurrently.

use crate::common::{Tiling, VectorWidth};
use halfgnn_graph::Coo;
use halfgnn_half::intrinsics::hadd;
use halfgnn_half::{Half, Half2};
use halfgnn_sim::launch::{launch, LaunchParams};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Tunable SDDMM knobs: the data-load vector width (Fig. 12) and whether
/// sub-warps pack multiple edges into one warp (§4.1). Both are plan
/// dimensions the autotuner searches; `sub_warps: false` is the prior-work
/// layout (one edge per warp, idle lanes, a full 5-round shuffle tree) and
/// exists so the tuner can *measure* what sub-warping buys. The functional
/// result is identical either way — only the modeled cost differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SddmmConfig {
    /// Data-load vector type.
    pub width: VectorWidth,
    /// Pack `32 / threads_per_edge` edges per warp (the paper's design).
    pub sub_warps: bool,
    /// Edge-tile geometry. Used to be hard-coded to the default, which
    /// collapsed the tuner's SDDMM search to width/packing alone — at
    /// large `f` those tie, so tuning bought nothing (the BENCH_pr3
    /// dead-end). Geometry changes the CTA count and wave occupancy, so
    /// it is cost-distinguishable where widths are not.
    pub tiling: Tiling,
}

impl SddmmConfig {
    /// The paper's default for feature length `f`: the widest vector type
    /// the (padded) feature length supports, with sub-warps on.
    pub fn widest_for(f: usize) -> SddmmConfig {
        let width = if f.is_multiple_of(8) {
            VectorWidth::Half8
        } else if f.is_multiple_of(4) {
            VectorWidth::Half4
        } else {
            VectorWidth::Half2
        };
        SddmmConfig { width, sub_warps: true, tiling: Tiling::default() }
    }
}

/// `out[e] ← dot(U[row(e)], V[col(e)])` in half precision.
///
/// `width` selects the data-load vector type (Fig. 12 compares them);
/// arithmetic is always half2 (wider types have no native arithmetic —
/// §5.1.2). `f` must be a multiple of `width.lanes()` (feature padding).
pub fn sddmm(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
    width: VectorWidth,
) -> (Vec<Half>, KernelStats) {
    sddmm_with_config(
        dev,
        coo,
        u,
        v,
        f,
        &SddmmConfig { width, sub_warps: true, tiling: Tiling::default() },
    )
}

/// [`sddmm`] with every plan knob explicit — the entry point the autotuner
/// dispatches through.
pub fn sddmm_with_config(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
    cfg: &SddmmConfig,
) -> (Vec<Half>, KernelStats) {
    sddmm_window(dev, coo, u, v, f, cfg, (0, coo.nnz()))
}

/// [`sddmm_with_config`] restricted to the global edge window `[e0, e1)` —
/// the per-shard launch of the distributed path (SDDMM output is per-edge,
/// so shards hand their contiguous global edge slice straight in). The
/// global tiling is clamped to the window, so window edges are
/// bit-identical to the full run; edges outside the window are zero.
#[allow(clippy::too_many_arguments)]
pub fn sddmm_window(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
    cfg: &SddmmConfig,
    edge_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    let width = cfg.width;
    let _site = halfgnn_half::overflow::site("halfgnn_sddmm");
    assert_eq!(u.len(), coo.num_rows() * f, "U shape mismatch");
    assert_eq!(v.len(), coo.num_cols() * f, "V shape mismatch");
    assert_eq!(
        f % width.lanes(),
        0,
        "feature length {f} needs padding to a multiple of {}",
        width.lanes()
    );
    let (e0, e1) = edge_window;
    assert!(e0 <= e1 && e1 <= coo.nnz(), "bad edge window {edge_window:?}");

    let nnz = coo.nnz();
    let tiling = cfg.tiling;
    let (cta_lo, cta_hi) = tiling.cta_range(e0, e1);
    let num_ctas = cta_hi - cta_lo;
    let rows = coo.rows();
    let cols = coo.cols();

    let mut space = AddrSpace::new();
    let rows_base = space.alloc(nnz, 4);
    let cols_base = space.alloc(nnz, 4);
    let u_base = space.alloc(u.len(), 2);
    let v_base = space.alloc(v.len(), 2);
    let out_base = space.alloc(nnz, 2);

    // Threads cooperating on one edge, and shuffle rounds to combine them.
    // Without sub-warps each edge occupies the whole warp: the reduction
    // tree must synchronize all 32 lanes (5 rounds) and only one edge's
    // group is in flight per warp — the cost the §4.1 design removes.
    let threads_per_edge = (f / width.lanes()).clamp(1, 32);
    let (sub_warps, shuffle_rounds) = if cfg.sub_warps {
        (32 / threads_per_edge.max(1), threads_per_edge.next_power_of_two().trailing_zeros() as u64)
    } else {
        (1, 32u64.trailing_zeros() as u64)
    };

    let (cta_outs, stats) = launch(
        dev,
        "halfgnn_sddmm",
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut out: Vec<(usize, Vec<Half>)> = Vec::new();
            for wi in 0..tiling.warps_per_cta {
                let (s, e) = tiling.warp_range_in(cta.id + cta_lo, wi, e0, e1);
                if s >= e {
                    continue;
                }
                let n = e - s;
                let mut warp = cta.warp(wi);

                // Phase 1: edge-parallel load of NZE indices (§4.1.1).
                warp.load_contiguous(rows_base + s as u64 * 4, n, 4);
                warp.load_contiguous(cols_base + s as u64 * 4, n, 4);
                warp.smem_accesses((n as u64 * 2).div_ceil(32) + 2);
                warp.barrier();

                // Phase 2: feature loads of both endpoints at the chosen
                // vector width.
                let row_bytes = f * 2;
                warp.load_feature_rows(
                    (s..e).flat_map(|ei| {
                        [
                            u_base + rows[ei] as u64 * (f as u64 * 2),
                            v_base + cols[ei] as u64 * (f as u64 * 2),
                        ]
                    }),
                    row_bytes,
                    width.bytes(),
                );

                // Dot products: half2 arithmetic regardless of load width.
                let half2_lanes = (f / 2) as u64;
                warp.half2_ops((n as u64 * half2_lanes).div_ceil(32));
                if width.lanes() > 2 {
                    // In-register fold of the wider vector down to half2
                    // before any shuffle (half4: 1 add2; half8: 3 add2s per
                    // 8 lanes — charged at half2 throughput).
                    let folds_per_edge = (f / 2 - f / width.lanes()) as u64;
                    warp.half2_ops((n as u64 * folds_per_edge).div_ceil(32).max(1));
                }

                // Reduction: shuffle rounds per sub-warp group; every round
                // is a barrier for the whole warp.
                let groups = n.div_ceil(sub_warps) as u64;
                warp.shuffle_rounds(groups * shuffle_rounds);

                // Output: one half per edge, contiguous across the tile.
                warp.store_contiguous(out_base + s as u64 * 2, n.div_ceil(2), 4);

                // Functional computation, faithful to the reduction tree:
                // each thread accumulates its feature stripe in a half2
                // register, the stripes tree-combine in half2, and the final
                // half2 folds to one half.
                let mut vals = Vec::with_capacity(n);
                for ei in s..e {
                    let ur = &u[rows[ei] as usize * f..rows[ei] as usize * f + f];
                    let vc = &v[cols[ei] as usize * f..cols[ei] as usize * f + f];
                    vals.push(dot_half2_tree(ur, vc, threads_per_edge, width.lanes()));
                }
                warp.nonfinite_values(crate::common::count_nonfinite(&vals));
                out.push((s, vals));
            }
            out
        },
    );

    let mut result = vec![Half::ZERO; nnz];
    for cta in cta_outs {
        for (s, vals) in cta {
            result[s..s + vals.len()].copy_from_slice(&vals);
        }
    }
    (result, stats)
}

/// Half-precision dot product with the exact reduction shape of the kernel:
/// per-thread half2 accumulation over a strided stripe, in-register fold,
/// then a binary shuffle tree across threads.
fn dot_half2_tree(u: &[Half], v: &[Half], threads: usize, lanes: usize) -> Half {
    let f = u.len();
    // Per-thread half2 accumulators.
    let mut accs: Vec<Half2> = vec![Half2::ZERO; threads];
    let chunk = lanes; // features one thread loads per iteration
    let stride = threads * chunk;
    for (t, acc) in accs.iter_mut().enumerate() {
        let mut base = t * chunk;
        while base < f {
            // Fold this chunk's half2 words into the accumulator.
            let mut j = 0;
            while j < chunk && base + j < f {
                let a = Half2::new(u[base + j], u[base + j + 1]);
                let b = Half2::new(v[base + j], v[base + j + 1]);
                *acc = a.fma2(b, *acc);
                j += 2;
            }
            base += stride;
        }
    }
    // Shuffle tree across threads (half2 adds), then the final fold.
    let mut width = threads.next_power_of_two();
    while width > 1 {
        width /= 2;
        for t in 0..width {
            if t + width < accs.len() {
                accs[t] = accs[t].add2(accs[t + width]);
            }
        }
    }
    hadd(accs[0].lo, accs[0].hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{assert_close_half, half_to_f64, sddmm_f64};
    use halfgnn_graph::gen;
    use halfgnn_graph::Csr;
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Coo {
        let edges = gen::erdos_renyi(n, m, seed);
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_halves(n: usize, scale: f32, seed: u64) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..n).map(|_| rng.gen_range(-scale..scale)).collect::<Vec<_>>())
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        // The shuffle-tree accumulation order is part of the functional
        // result, so it must survive the backend swap at every width.
        let g = random_graph(120, 500, 11);
        let f = 32;
        let u = random_halves(g.num_rows() * f, 0.5, 12);
        let v = random_halves(g.num_cols() * f, 0.5, 13);
        let fast = dev().fast();
        let bits = |e: &[Half]| e.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();
        for width in [VectorWidth::Half2, VectorWidth::Half4, VectorWidth::Half8] {
            let (sim_y, _) = sddmm(&dev(), &g, &u, &v, f, width);
            let (fast_y, fast_s) = sddmm(&fast, &g, &u, &v, f, width);
            assert_eq!(bits(&sim_y), bits(&fast_y), "{width:?}");
            assert_eq!(fast_s.cycles, 0.0);
            assert_eq!(fast_s.totals.shuffles, 0, "fast charging is a no-op");
        }
    }

    #[test]
    fn all_widths_match_reference() {
        let g = random_graph(150, 700, 1);
        for f in [16usize, 32, 64, 128] {
            let u = random_halves(g.num_rows() * f, 0.5, 2);
            let v = random_halves(g.num_cols() * f, 0.5, 3);
            let want = sddmm_f64(&g, &half_to_f64(&u), &half_to_f64(&v), f);
            for width in [VectorWidth::Half2, VectorWidth::Half4, VectorWidth::Half8] {
                let (got, _) = sddmm(&dev(), &g, &u, &v, f, width);
                assert_close_half(&got, &want, 0.03, 0.05, &format!("sddmm f={f} {width:?}"));
            }
        }
    }

    #[test]
    fn widths_agree_within_rounding() {
        // Different widths accumulate in different orders, so results can
        // differ by half-precision rounding — but no more.
        let g = random_graph(60, 250, 5);
        let f = 32;
        let u = random_halves(g.num_rows() * f, 1.0, 6);
        let v = random_halves(g.num_cols() * f, 1.0, 7);
        let (a, _) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half2);
        let (b, _) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half8);
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.to_f32(), y.to_f32());
            assert!((x - y).abs() <= 0.05 + 0.02 * x.abs().max(y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn half8_is_faster_than_half2() {
        // Fig. 12: fewer shuffle rounds + wider loads → speedup.
        let g = random_graph(2_000, 40_000, 8);
        let f = 64;
        let u = random_halves(g.num_rows() * f, 0.5, 9);
        let v = random_halves(g.num_cols() * f, 0.5, 10);
        let (_, s2) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half2);
        let (_, s8) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half8);
        assert!(s8.cycles < s2.cycles, "half8 {} should beat half2 {}", s8.cycles, s2.cycles);
        // And it does so via fewer barriers and fewer load instructions.
        assert!(s8.totals.shuffles < s2.totals.shuffles);
        assert!(s8.totals.load_instrs < s2.totals.load_instrs);
        // Same useful bytes either way.
        assert_eq!(s8.totals.useful_bytes_loaded, s2.totals.useful_bytes_loaded);
    }

    #[test]
    fn shuffle_round_counts_match_section_5_1_3() {
        // F = 32: half8 → 4 threads → 2 rounds; half2 → 16 threads → 4
        // rounds (the paper's exact example).
        let g = Coo::from_edges(2, 2, &[(0, 1)]);
        let f = 32;
        let u = random_halves(2 * f, 1.0, 11);
        let v = random_halves(2 * f, 1.0, 12);
        let (_, s8) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half8);
        let (_, s2) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half2);
        assert_eq!(s8.totals.shuffles, 2);
        assert_eq!(s2.totals.shuffles, 4);
    }

    #[test]
    fn widest_config_matches_the_model_layer_rule() {
        assert_eq!(SddmmConfig::widest_for(64).width, VectorWidth::Half8);
        assert_eq!(SddmmConfig::widest_for(12).width, VectorWidth::Half4);
        assert_eq!(SddmmConfig::widest_for(6).width, VectorWidth::Half2);
        assert!(SddmmConfig::widest_for(64).sub_warps);
    }

    #[test]
    fn disabling_sub_warps_costs_shuffles_but_changes_no_values() {
        // One edge per warp → a full 32-lane shuffle tree per edge and no
        // edge packing: strictly more modeled work, bit-identical output.
        let g = random_graph(100, 400, 30);
        let f = 32;
        let u = random_halves(g.num_rows() * f, 0.5, 31);
        let v = random_halves(g.num_cols() * f, 0.5, 32);
        let (a, sa) = sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half8);
        let (b, sb) = sddmm_with_config(
            &dev(),
            &g,
            &u,
            &v,
            f,
            &SddmmConfig { sub_warps: false, ..SddmmConfig::widest_for(f) },
        );
        let bits = |e: &[Half]| e.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();
        assert_eq!(bits(&a), bits(&b));
        assert!(
            sb.totals.shuffles > sa.totals.shuffles,
            "{} vs {}",
            sb.totals.shuffles,
            sa.totals.shuffles
        );
        assert!(sb.cycles > sa.cycles, "{} vs {}", sb.cycles, sa.cycles);
    }

    #[test]
    fn tiling_geometry_changes_cost_but_not_values() {
        // The knob the tuner gained in PR 4: geometry moves modeled cost
        // (CTA count, wave occupancy) while the output stays bit-identical.
        let g = random_graph(1_500, 20_000, 40);
        let f = 64;
        let u = random_halves(g.num_rows() * f, 0.5, 41);
        let v = random_halves(g.num_cols() * f, 0.5, 42);
        let small_dev = DeviceConfig::tiny();
        let base = SddmmConfig::widest_for(f);
        let wide = SddmmConfig { tiling: Tiling { edges_per_warp: 128, warps_per_cta: 8 }, ..base };
        let (a, sa) = sddmm_with_config(&small_dev, &g, &u, &v, f, &base);
        let (b, sb) = sddmm_with_config(&small_dev, &g, &u, &v, f, &wide);
        let bits = |e: &[Half]| e.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();
        assert_eq!(bits(&a), bits(&b));
        assert_ne!(sa.cycles, sb.cycles, "geometry must move modeled cost");
    }

    #[test]
    fn unpadded_feature_length_rejected() {
        let g = Coo::from_edges(2, 2, &[(0, 1)]);
        let u = random_halves(2 * 12, 1.0, 1);
        let v = random_halves(2 * 12, 1.0, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sddmm(&dev(), &g, &u, &v, 12, VectorWidth::Half8)
        }));
        assert!(r.is_err(), "F=12 is not a multiple of 8");
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Coo::from_edges(4, 4, &[]);
        let u = random_halves(4 * 8, 1.0, 1);
        let v = random_halves(4 * 8, 1.0, 2);
        let (out, _) = sddmm(&dev(), &g, &u, &v, 8, VectorWidth::Half2);
        assert!(out.is_empty());
    }

    #[test]
    fn dot_tree_matches_simple_dot_for_small_values() {
        let u = random_halves(64, 0.25, 20);
        let v = random_halves(64, 0.25, 21);
        let exact: f64 = u.iter().zip(&v).map(|(a, b)| a.to_f64() * b.to_f64()).sum();
        for (threads, lanes) in [(32, 2), (16, 2), (8, 4), (4, 8), (8, 8)] {
            let got = dot_half2_tree(&u, &v, threads, lanes).to_f64();
            assert!(
                (got - exact).abs() < 0.05 + 0.03 * exact.abs(),
                "threads={threads} lanes={lanes}: {got} vs {exact}"
            );
        }
    }
}
