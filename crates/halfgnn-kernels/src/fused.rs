//! **Fused half-native GAT attention** (§5.3 + §4.3 combined): the whole
//! SDDMM-score → edge-softmax → SpMM chain in one row-parallel pass.
//!
//! The unfused GAT forward runs five edge-level kernels
//! (`src_dst_add_leakyrelu` → `edge_reduce(Max)` → `sub_row_exp` →
//! `edge_reduce(Sum)` → `div_row`) before the `spmmve` aggregation, each
//! round-tripping a full |E|-length half buffer through DRAM. The fused
//! kernel keeps the per-edge score, the shifted exponent and the
//! normalized weight in registers for the row a warp owns, so the only
//! edge-length buffers it touches are the two the layer *state* needs for
//! backward (`e` and `alpha`); the shifted-exp scratch, the row-max `m`
//! and the row-sum `z` are never materialized.
//!
//! Safety relies on the shadow-API contract (§5.3): the exp argument is
//! `e_ij − m_i ≤ 0` by construction, so `exp(·) ∈ (0, 1]` and the pure
//! half `hexp` cannot overflow — no AMP float promotion, no guard. The
//! aggregation is a convex combination (`Σ_j α_ij = 1`, each `α ∈ (0,1]`),
//! so the accumulator is bounded by `max|z|`; the discretized batch
//! structure of §4.3 is kept per ≤`edges_per_warp` neighbor batch inside
//! the fused loop, but no degree scale is needed.
//!
//! **Geometry.** Unlike the edge-parallel unfused kernels, a fused warp
//! must see a whole row to normalize it, so warps own greedy runs of
//! *complete* CSR rows (≥1 row, up to `edges_per_warp` edges). Every
//! output row has exactly one owner: all writes are direct (`assign`),
//! no staging buffer, no follow-up kernel. The price is load imbalance on
//! hub rows — which is exactly why `fused` is a tuner *candidate*, not a
//! replacement (skewed graphs may keep the unfused chain).
//!
//! **Cost accounting.** Fused kernels charge DRAM sectors only for the
//! buffers they actually touch (`cols`, row offsets, gathered scores, the
//! stored `e`/`alpha`, the gathered `z` rows, the stored output). The
//! eliminated intermediates are *not* charged — that is the point of the
//! fusion and the quantity `BENCH_pr4` measures.

use crate::common::{count_nonfinite, Tiling};
use crate::halfgnn_spmm::row_offsets_of;
use halfgnn_graph::Coo;
use halfgnn_half::intrinsics::{hadd, hdiv, hexp, hmax, hmul, hsub};
use halfgnn_half::overflow;
use halfgnn_half::Half;
use halfgnn_sim::launch::{commit_all, launch, LaunchParams, WriteList};
use halfgnn_sim::memory::AddrSpace;
use halfgnn_sim::{DeviceConfig, KernelStats};

/// Outputs of the fused forward pass: exactly the buffers GAT's backward
/// needs, nothing else.
pub struct FusedAttnForward {
    /// Post-LeakyReLU attention logits `e` (edge-level, layer state).
    pub e: Vec<Half>,
    /// Normalized attention weights `α` (edge-level, layer state).
    pub alpha: Vec<Half>,
    /// Aggregated output `Y = A_α · Z` (row-major, `num_rows × f`).
    pub out: Vec<Half>,
}

/// Greedy assignment of complete CSR rows to warps: each run holds ≥1 row
/// and at most `budget` edges (a single row larger than the budget gets a
/// run of its own — fused softmax cannot split a row).
#[cfg(test)]
fn row_runs(off: &[usize], budget: usize) -> Vec<(usize, usize)> {
    row_runs_in(off, budget, 0, off.len() - 1)
}

/// [`row_runs`] over the row window `[rw0, rw1)` only. Run grouping is a
/// cost-model concern: every functional quantity in the fused kernels is
/// per-row, so windowed runs produce bit-identical per-row outputs even
/// though a shard boundary may cut a run the full launch would have formed.
fn row_runs_in(off: &[usize], budget: usize, rw0: usize, rw1: usize) -> Vec<(usize, usize)> {
    let num_rows = rw1;
    let mut runs = Vec::new();
    let mut r = rw0;
    while r < num_rows {
        let mut r_end = r + 1;
        let mut edges = off[r + 1] - off[r];
        while r_end < num_rows && edges + (off[r_end + 1] - off[r_end]) <= budget {
            edges += off[r_end + 1] - off[r_end];
            r_end += 1;
        }
        runs.push((r, r_end));
        r = r_end;
    }
    runs
}

struct FwdCtaOut {
    out_writes: WriteList<Half>,
    e_runs: Vec<(usize, Vec<Half>)>,
    alpha_runs: Vec<(usize, Vec<Half>)>,
}

/// Fused GAT attention forward: per owned row compute
/// `e_ij = LeakyReLU(s_row[i] + s_col[j])`, the running row-max `m_i`,
/// the shadow-exp `exp(e_ij − m_i)`, the row-sum `z_i`, the normalized
/// `α_ij` and the aggregation `Σ_j α_ij · Z[j]` in one pass.
///
/// `s_row` is gathered by destination row, `s_col` by source column —
/// mirroring the argument order GAT's forward passes to
/// [`crate::edge_ops::src_dst_add_leakyrelu`].
pub fn fused_attn_forward(
    dev: &DeviceConfig,
    coo: &Coo,
    s_row: &[Half],
    s_col: &[Half],
    slope: f32,
    z: &[Half],
    f: usize,
) -> (FusedAttnForward, KernelStats) {
    fused_attn_forward_window(dev, coo, s_row, s_col, slope, z, f, (0, coo.num_rows()))
}

/// [`fused_attn_forward`] restricted to the global row window `[r0, r1)` —
/// the per-shard distributed launch. All fused state is per-row, so window
/// rows (and their `e`/`alpha` edge slices) are bit-identical to the full
/// run; rows/edges outside the window are zero.
#[allow(clippy::too_many_arguments)]
pub fn fused_attn_forward_window(
    dev: &DeviceConfig,
    coo: &Coo,
    s_row: &[Half],
    s_col: &[Half],
    slope: f32,
    z: &[Half],
    f: usize,
    row_window: (usize, usize),
) -> (FusedAttnForward, KernelStats) {
    assert_eq!(s_row.len(), coo.num_rows(), "s_row length mismatch");
    assert_eq!(s_col.len(), coo.num_cols(), "s_col length mismatch");
    assert_eq!(z.len(), coo.num_cols() * f, "Z shape mismatch");
    assert!(f.is_multiple_of(2), "feature length must be half2-padded (got {f})");
    let (rw0, rw1) = row_window;
    assert!(rw0 <= rw1 && rw1 <= coo.num_rows(), "bad row window {row_window:?}");
    let _site = overflow::site("fused_attn");

    let nnz = coo.nnz();
    let num_rows = coo.num_rows();
    let cols = coo.cols();
    let off = row_offsets_of(coo);
    let tiling = Tiling::default();
    let runs = row_runs_in(&off, tiling.edges_per_warp, rw0, rw1);
    let num_ctas = runs.len().div_ceil(tiling.warps_per_cta).max(1);
    let slope_h = Half::from_f32(slope);
    let half2_lanes = (f / 2) as u64;

    let mut space = AddrSpace::new();
    let off_base = space.alloc(num_rows + 1, 4);
    let cols_base = space.alloc(nnz, 4);
    let srow_base = space.alloc(num_rows, 2);
    let scol_base = space.alloc(coo.num_cols(), 2);
    let z_base = space.alloc(z.len(), 2);
    let e_base = space.alloc(nnz, 2);
    let alpha_base = space.alloc(nnz, 2);
    let out_base = space.alloc(num_rows * f, 2);

    let (cta_outs, stats) = launch(
        dev,
        "fused_attn_forward",
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut out = FwdCtaOut {
                out_writes: WriteList::new(),
                e_runs: Vec::new(),
                alpha_runs: Vec::new(),
            };
            for wi in 0..tiling.warps_per_cta {
                let gi = cta.id * tiling.warps_per_cta + wi;
                let Some(&(r0, r1)) = runs.get(gi) else { break };
                let (s, e_end) = (off[r0], off[r1]);
                if s >= e_end {
                    continue; // run of empty rows: nothing to touch
                }
                let n = e_end - s;
                let echunks = (n as u64).div_ceil(32);
                let mut warp = cta.warp(wi);

                // ---- Loads: row structure + scores (everything the five
                // unfused kernels re-read per launch is read once here).
                warp.load_contiguous(off_base + r0 as u64 * 4, r1 - r0 + 1, 4);
                warp.load_contiguous(cols_base + s as u64 * 4, n, 4);
                warp.load_gather((r0..r1).map(|r| srow_base + r as u64 * 2), 2);
                warp.load_gather((s..e_end).map(|ei| scol_base + cols[ei] as u64 * 2), 2);

                // ---- Scores: add + sign test + slope multiply (same
                // 3-instruction profile as the unfused kernel).
                warp.half_ops(3 * echunks);
                // Running row max: lane-wise max + a segmented warp scan —
                // 5 shuffle rounds resolve every row boundary in a 32-edge
                // chunk at once (rows never span chunks of different warps).
                warp.half_ops(echunks);
                warp.shuffle_rounds(5 * echunks);
                // `e` is layer state — the one edge buffer this phase writes.
                warp.store_contiguous(e_base + s as u64 * 2, n.div_ceil(2), 4);

                // ---- Shadow exp + row sum + normalize, register-resident.
                warp.half_ops(2 * echunks); // hsub + hexp
                warp.half_ops(echunks); // lane-wise sum
                warp.shuffle_rounds(5 * echunks);
                warp.half_ops(echunks); // hdiv broadcast of 1/z
                warp.store_contiguous(alpha_base + s as u64 * 2, n.div_ceil(2), 4);

                // ---- Aggregation: gather Z rows + half2 FMA, per-batch
                // joins keeping the §4.3 discretized structure.
                warp.load_feature_rows(
                    (s..e_end).map(|ei| z_base + cols[ei] as u64 * (f as u64 * 2)),
                    f * 2,
                    4,
                );
                warp.half2_ops((n as u64 * half2_lanes).div_ceil(32));

                // ---- Functional: row by row.
                let mut e_vals = Vec::with_capacity(n);
                let mut alpha_vals = Vec::with_capacity(n);
                for r in r0..r1 {
                    let (rs, re) = (off[r], off[r + 1]);
                    if rs == re {
                        continue; // empty row: output stays zero, untouched
                    }
                    let deg = re - rs;
                    // Scores + running max.
                    let mut m = Half::NEG_INFINITY;
                    let row_e: Vec<Half> = (rs..re)
                        .map(|ei| {
                            let v = hadd(s_row[r], s_col[cols[ei] as usize]);
                            let v = if v.to_f32() >= 0.0 { v } else { hmul(v, slope_h) };
                            m = hmax(m, v);
                            v
                        })
                        .collect();
                    // Shadow exp: argument ≤ 0, result in (0, 1] — never
                    // overflows, so `z ∈ [1, deg]` and the divide is safe.
                    let num: Vec<Half> = row_e.iter().map(|&v| hexp(hsub(v, m))).collect();
                    let z_sum = num.iter().fold(Half::ZERO, |a, &b| hadd(a, b));
                    let row_alpha: Vec<Half> = num.iter().map(|&v| hdiv(v, z_sum)).collect();

                    // Aggregation in ≤edges_per_warp neighbor batches.
                    let mut acc = vec![Half::ZERO; f];
                    for (bi, batch) in
                        (0..deg).collect::<Vec<_>>().chunks(tiling.edges_per_warp).enumerate()
                    {
                        let mut batch_acc = vec![Half::ZERO; f];
                        for &k in batch {
                            let a = row_alpha[k];
                            let c = cols[rs + k] as usize;
                            for (bv, &zv) in batch_acc.iter_mut().zip(&z[c * f..(c + 1) * f]) {
                                *bv = hadd(*bv, hmul(a, zv));
                            }
                        }
                        if bi == 0 {
                            acc = batch_acc;
                        } else {
                            for (a, b) in acc.iter_mut().zip(&batch_acc) {
                                *a = hadd(*a, *b);
                            }
                            warp.half2_ops(half2_lanes.div_ceil(32)); // batch join
                        }
                    }
                    warp.nonfinite_values(count_nonfinite(&row_alpha));
                    warp.nonfinite_values(count_nonfinite(&acc));
                    // Row has exactly one owner: direct non-conflicting write.
                    warp.store_contiguous(out_base + r as u64 * (f as u64 * 2), f / 2, 4);
                    out.out_writes.assign(r * f, acc);
                    e_vals.extend(row_e);
                    alpha_vals.extend(row_alpha);
                }
                out.e_runs.push((s, e_vals));
                out.alpha_runs.push((s, alpha_vals));
            }
            out
        },
    );

    let mut e_out = vec![Half::ZERO; nnz];
    let mut alpha_out = vec![Half::ZERO; nnz];
    let mut y = vec![Half::ZERO; num_rows * f];
    let mut writes = Vec::with_capacity(cta_outs.len());
    for c in cta_outs {
        for (s, vals) in c.e_runs {
            e_out[s..s + vals.len()].copy_from_slice(&vals);
        }
        for (s, vals) in c.alpha_runs {
            alpha_out[s..s + vals.len()].copy_from_slice(&vals);
        }
        writes.push(c.out_writes);
    }
    debug_assert!(
        halfgnn_sim::launch::find_assign_overlap(&writes).is_none(),
        "conflicting direct writes: {:?}",
        halfgnn_sim::launch::find_assign_overlap(&writes)
    );
    commit_all(writes, &mut y);

    (FusedAttnForward { e: e_out, alpha: alpha_out, out: y }, stats)
}

/// Fused softmax-gradient half of GAT's backward: per owned row compute
/// `t_i = Σ_j α_ij · δα_ij` (register-resident), then
/// `δe_ij = LeakyReLU'(e_ij) · α_ij · (δα_ij − t_i)` in one pass —
/// replacing the unfused `mul` → `edge_reduce(Sum)` → `softmax_grad` →
/// `leakyrelu_grad` chain and its two scratch edge buffers.
pub fn fused_softmax_grad(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[Half],
    dalpha: &[Half],
    e: &[Half],
    slope: f32,
) -> (Vec<Half>, KernelStats) {
    fused_softmax_grad_window(dev, coo, alpha, dalpha, e, slope, (0, coo.num_rows()))
}

/// [`fused_softmax_grad`] restricted to the global row window `[r0, r1)`;
/// see [`fused_attn_forward_window`] for the per-row bit-identity contract.
pub fn fused_softmax_grad_window(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[Half],
    dalpha: &[Half],
    e: &[Half],
    slope: f32,
    row_window: (usize, usize),
) -> (Vec<Half>, KernelStats) {
    assert_eq!(alpha.len(), coo.nnz(), "alpha length mismatch");
    assert_eq!(dalpha.len(), coo.nnz(), "dalpha length mismatch");
    assert_eq!(e.len(), coo.nnz(), "e length mismatch");
    let (rw0, rw1) = row_window;
    assert!(rw0 <= rw1 && rw1 <= coo.num_rows(), "bad row window {row_window:?}");
    let _site = overflow::site("fused_softmax_grad");

    let nnz = coo.nnz();
    let num_rows = coo.num_rows();
    let off = row_offsets_of(coo);
    let tiling = Tiling::default();
    let runs = row_runs_in(&off, tiling.edges_per_warp, rw0, rw1);
    let num_ctas = runs.len().div_ceil(tiling.warps_per_cta).max(1);
    let slope_h = Half::from_f32(slope);

    let mut space = AddrSpace::new();
    let off_base = space.alloc(num_rows + 1, 4);
    let alpha_base = space.alloc(nnz, 2);
    let dalpha_base = space.alloc(nnz, 2);
    let e_base = space.alloc(nnz, 2);
    let de_base = space.alloc(nnz, 2);

    let (cta_outs, stats) = launch(
        dev,
        "fused_softmax_grad",
        LaunchParams { num_ctas, warps_per_cta: tiling.warps_per_cta },
        |cta| {
            let mut out_runs: Vec<(usize, Vec<Half>)> = Vec::new();
            for wi in 0..tiling.warps_per_cta {
                let gi = cta.id * tiling.warps_per_cta + wi;
                let Some(&(r0, r1)) = runs.get(gi) else { break };
                let (s, e_end) = (off[r0], off[r1]);
                if s >= e_end {
                    continue;
                }
                let n = e_end - s;
                let echunks = (n as u64).div_ceil(32);
                let mut warp = cta.warp(wi);

                warp.load_contiguous(off_base + r0 as u64 * 4, r1 - r0 + 1, 4);
                warp.load_contiguous(alpha_base + s as u64 * 2, n.div_ceil(2), 4);
                warp.load_contiguous(dalpha_base + s as u64 * 2, n.div_ceil(2), 4);
                warp.load_contiguous(e_base + s as u64 * 2, n.div_ceil(2), 4);
                // t_i: lane-wise products + a segmented warp scan (t stays
                // in a register — never materialized).
                warp.half_ops(2 * echunks);
                warp.shuffle_rounds(5 * echunks);
                // δe: subtract + multiply, then the LeakyReLU gate.
                warp.half_ops(2 * echunks);
                warp.half_ops(2 * echunks);
                warp.store_contiguous(de_base + s as u64 * 2, n.div_ceil(2), 4);

                let mut vals = Vec::with_capacity(n);
                for r in r0..r1 {
                    let (rs, re) = (off[r], off[r + 1]);
                    if rs == re {
                        continue;
                    }
                    let t = (rs..re).fold(Half::ZERO, |a, ei| a.hadd_mul(alpha[ei], dalpha[ei]));
                    for ei in rs..re {
                        let soft = hmul(alpha[ei], hsub(dalpha[ei], t));
                        let de = if e[ei].to_f32() >= 0.0 { soft } else { hmul(soft, slope_h) };
                        vals.push(de);
                    }
                }
                warp.nonfinite_values(count_nonfinite(&vals));
                out_runs.push((s, vals));
            }
            out_runs
        },
    );

    let mut de = vec![Half::ZERO; nnz];
    for runs in cta_outs {
        for (s, vals) in runs {
            de[s..s + vals.len()].copy_from_slice(&vals);
        }
    }
    (de, stats)
}

/// `a + alpha·dalpha` in half arithmetic (the fused `t_i` accumulator
/// step), as a helper so the fold above reads like the kernel loop.
trait HaddMul {
    fn hadd_mul(self, a: Half, b: Half) -> Half;
}

impl HaddMul for Half {
    fn hadd_mul(self, a: Half, b: Half) -> Half {
        hadd(self, hmul(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{EdgeWeights, Reduce, ScalePlacement};
    use crate::edge_ops;
    use crate::halfgnn_spmm::{self, SpmmConfig};
    use halfgnn_graph::{gen, Csr};
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Coo {
        let edges = gen::erdos_renyi(n, m, seed);
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_halves(n: usize, scale: f32, seed: u64) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..n).map(|_| rng.gen_range(-scale..scale)).collect::<Vec<_>>())
    }

    /// The unfused five-kernel forward chain the fusion replaces.
    fn unfused_forward(
        d: &DeviceConfig,
        g: &Coo,
        s_row: &[Half],
        s_col: &[Half],
        slope: f32,
        z: &[Half],
        f: usize,
    ) -> (Vec<Half>, Vec<Half>, Vec<Half>, KernelStats) {
        let (e, s1) = edge_ops::src_dst_add_leakyrelu(d, g, s_row, s_col, slope);
        let (m, s2) = halfgnn_spmm::edge_reduce(d, g, &e, Reduce::Max);
        let (num, s3) = edge_ops::sub_row_exp(d, g, &e, &m, true);
        let (zs, s4) = halfgnn_spmm::edge_reduce(d, g, &num, Reduce::Sum);
        let (alpha, s5) = edge_ops::div_row(d, g, &num, &zs);
        let (y, s6) = halfgnn_spmm::spmm(
            d,
            g,
            EdgeWeights::Values(&alpha),
            z,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let stats = s1.then(&s2).then(&s3).then(&s4).then(&s5).then(&s6);
        (e, alpha, y, stats)
    }

    #[test]
    fn fused_forward_matches_unfused_chain() {
        let g = random_graph(150, 700, 41);
        let f = 16;
        let s_row = random_halves(g.num_rows(), 2.0, 42);
        let s_col = random_halves(g.num_cols(), 2.0, 43);
        let z = random_halves(g.num_cols() * f, 1.0, 44);
        let (fused, _) = fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        let (e_u, alpha_u, y_u, _) = unfused_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        // Scores are computed by the identical half instruction sequence.
        assert_eq!(
            fused.e.iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
            e_u.iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
            "scores must be bit-identical"
        );
        for (i, (a, b)) in fused.alpha.iter().zip(&alpha_u).enumerate() {
            assert!(
                crate::reference::close(a.to_f64(), b.to_f64(), 2e-2, 2e-2),
                "alpha[{i}]: fused {a:?} vs unfused {b:?}"
            );
        }
        for (i, (a, b)) in fused.out.iter().zip(&y_u).enumerate() {
            assert!(
                crate::reference::close(a.to_f64(), b.to_f64(), 3e-2, 3e-2),
                "out[{i}]: fused {a:?} vs unfused {b:?}"
            );
        }
    }

    #[test]
    fn fused_rows_sum_to_one() {
        let g = random_graph(100, 500, 51);
        let f = 8;
        let s_row = random_halves(g.num_rows(), 3.0, 52);
        let s_col = random_halves(g.num_cols(), 3.0, 53);
        let z = random_halves(g.num_cols() * f, 1.0, 54);
        let (fused, _) = fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        let off = row_offsets_of(&g);
        for r in 0..g.num_rows() {
            if off[r] == off[r + 1] {
                continue;
            }
            let sum: f32 = fused.alpha[off[r]..off[r + 1]].iter().map(|h| h.to_f32()).sum();
            assert!((sum - 1.0).abs() < 0.05, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn fused_forward_is_overflow_clean_even_on_extreme_scores() {
        // All-negative and large-magnitude scores: the shadow-exp argument
        // is still ≤ 0, so the fused exp path records zero overflow events.
        let g = random_graph(80, 400, 61);
        let f = 8;
        let s_row = vec![Half::from_f32(-60000.0); g.num_rows()];
        let s_col = random_halves(g.num_cols(), 100.0, 63);
        let z = random_halves(g.num_cols() * f, 1.0, 64);
        let ((fused, _), summary) =
            overflow::isolated(|| fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f));
        assert!(summary.is_clean(), "{} overflow events in fused path", summary.nonfinite());
        assert!(fused.alpha.iter().all(|h| h.is_finite()));
        assert!(fused.out.iter().all(|h| h.is_finite()));
    }

    #[test]
    fn fused_backward_matches_unfused_chain() {
        let g = random_graph(120, 600, 71);
        let f = 8;
        let s_row = random_halves(g.num_rows(), 1.0, 72);
        let s_col = random_halves(g.num_cols(), 1.0, 73);
        let z = random_halves(g.num_cols() * f, 1.0, 74);
        let (fwd, _) = fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        let dalpha = random_halves(g.nnz(), 1.0, 75);

        let (de_f, _) = fused_softmax_grad(&dev(), &g, &fwd.alpha, &dalpha, &fwd.e, 0.2);

        let d = dev();
        let (prod, _) = edge_ops::mul(&d, &g, &fwd.alpha, &dalpha);
        let (t, _) = halfgnn_spmm::edge_reduce(&d, &g, &prod, Reduce::Sum);
        let (de_soft, _) = edge_ops::softmax_grad(&d, &g, &fwd.alpha, &dalpha, &t);
        let (de_u, _) = edge_ops::leakyrelu_grad(&d, &g, &fwd.e, &de_soft, 0.2);

        for (i, (a, b)) in de_f.iter().zip(&de_u).enumerate() {
            assert!(
                crate::reference::close(a.to_f64(), b.to_f64(), 2e-2, 2e-2),
                "de[{i}]: fused {a:?} vs unfused {b:?}"
            );
        }
    }

    #[test]
    fn fast_executor_matches_sim_bitwise() {
        let g = random_graph(90, 450, 81);
        let f = 16;
        let s_row = random_halves(g.num_rows(), 1.0, 82);
        let s_col = random_halves(g.num_cols(), 1.0, 83);
        let z = random_halves(g.num_cols() * f, 1.0, 84);
        let dalpha = random_halves(g.nnz(), 1.0, 85);
        let fast = dev().fast();
        let bits = |v: &[Half]| v.iter().map(|h| h.to_bits()).collect::<Vec<u16>>();

        let (sim, ss) = fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        let (fst, fs) = fused_attn_forward(&fast, &g, &s_row, &s_col, 0.2, &z, f);
        assert_eq!(bits(&sim.e), bits(&fst.e));
        assert_eq!(bits(&sim.alpha), bits(&fst.alpha));
        assert_eq!(bits(&sim.out), bits(&fst.out));
        assert!(ss.cycles > 0.0);
        assert_eq!(fs.cycles, 0.0, "fast stats are wall-clock only");

        let (sim_de, _) = fused_softmax_grad(&dev(), &g, &sim.alpha, &dalpha, &sim.e, 0.2);
        let (fst_de, _) = fused_softmax_grad(&fast, &g, &fst.alpha, &dalpha, &fst.e, 0.2);
        assert_eq!(bits(&sim_de), bits(&fst_de));
    }

    #[test]
    fn empty_rows_and_empty_graphs_are_fine() {
        let g = Coo::from_edges(6, 6, &[(0, 1), (0, 2), (3, 3)]);
        let f = 4;
        let s_row = random_halves(6, 1.0, 91);
        let s_col = random_halves(6, 1.0, 92);
        let z = random_halves(6 * f, 1.0, 93);
        let (fwd, _) = fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        // Rows 1, 2, 4, 5 have no edges: output stays zero.
        for r in [1usize, 2, 4, 5] {
            assert!(fwd.out[r * f..(r + 1) * f].iter().all(|h| h.is_zero()), "row {r}");
        }
        let dalpha = random_halves(g.nnz(), 1.0, 94);
        let (de, _) = fused_softmax_grad(&dev(), &g, &fwd.alpha, &dalpha, &fwd.e, 0.2);
        assert_eq!(de.len(), 3);

        let empty = Coo::from_edges(4, 4, &[]);
        let (fwd0, _) =
            fused_attn_forward(&dev(), &empty, &s_row[..4], &s_col[..4], 0.2, &z[..4 * f], f);
        assert!(fwd0.out.iter().all(|h| h.is_zero()));
        assert!(fwd0.e.is_empty() && fwd0.alpha.is_empty());
    }

    #[test]
    fn fused_beats_unfused_on_cycles_and_dram_bytes() {
        // The headline claim: one pass through DRAM instead of six. Small
        // f is where the edge-buffer traffic dominates (at large f the
        // per-edge Z-row gather swamps both designs equally).
        let edges = gen::erdos_renyi(2_000, 12_000, 7);
        let g = Csr::from_edges(2_000, 2_000, &edges).symmetrized_with_self_loops().to_coo();
        let f = 8;
        let s_row = random_halves(g.num_rows(), 1.0, 101);
        let s_col = random_halves(g.num_cols(), 1.0, 102);
        let z = random_halves(g.num_cols() * f, 1.0, 103);
        let (_, fused_stats) = fused_attn_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        let (_, _, _, unfused_stats) = unfused_forward(&dev(), &g, &s_row, &s_col, 0.2, &z, f);
        assert!(
            unfused_stats.cycles >= 1.25 * fused_stats.cycles,
            "cycles: unfused {} vs fused {}",
            unfused_stats.cycles,
            fused_stats.cycles
        );
        assert!(
            unfused_stats.dram_bytes() as f64 >= 1.5 * fused_stats.dram_bytes() as f64,
            "dram: unfused {} vs fused {}",
            unfused_stats.dram_bytes(),
            fused_stats.dram_bytes()
        );
    }

    #[test]
    fn row_runs_cover_all_rows_without_splitting() {
        let g = random_graph(200, 1500, 111);
        let off = row_offsets_of(&g);
        let runs = row_runs(&off, 64);
        let mut next = 0;
        for &(r0, r1) in &runs {
            assert_eq!(r0, next, "runs must tile the row range");
            assert!(r1 > r0);
            next = r1;
        }
        assert_eq!(next, g.num_rows());
    }
}
