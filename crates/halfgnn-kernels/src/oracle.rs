//! Differential-testing oracle: run a kernel, run the serial `f64`
//! reference, and produce a structured [`DivergenceReport`] instead of a
//! bare pass/fail.
//!
//! The assert helpers in [`crate::reference`] answer *whether* a kernel is
//! wrong; this module answers *where and how*. Every element is compared
//! under a symmetric [`Tolerance`] and each failure is annotated with the
//! context a kernel author needs to localize the bug:
//!
//! * the flat element index, plus its **row** (and **edge** id for
//!   edge-shaped outputs) recovered from the output [`Layout`],
//! * the **degree** of that row — overflow and reduction-order bugs are
//!   degree-correlated (§3.1.3: hub rows overflow first),
//! * the error in **FP16 ulps** ([`ulp_f16`]), which separates "one
//!   rounding step off" from "wrong algorithm",
//! * whether the kernel produced **INF/NaN where the reference is finite**
//!   — the signature of the Fig. 1c overflow failure mode, distinct from
//!   an ordinary numeric mismatch.
//!
//! [`compare_half`]/[`compare_f32`] are the raw engines; the `check_*`
//! functions wrap every public kernel in this crate so a test (or a
//! debugging session) can get a report in one call. Reports are cheap:
//! only the first and worst divergences are stored, never all of them.

use crate::baseline::cusparse::EdgeWeightsF32;
use crate::common::{EdgeWeights, Reduce, ScalePlacement, VectorWidth};
use crate::halfgnn_spmm::SpmmConfig;
use crate::{
    baseline, dist, edge_ops, fused, halfgnn_sddmm, halfgnn_spmm, huang, quant_spmm, reference,
};
use halfgnn_graph::{Coo, Csr};
use halfgnn_half::Half;
use halfgnn_sim::{DeviceConfig, KernelStats};
use std::fmt;

/// Symmetric comparison band: `|g − w| ≤ abs + rel · max(|g|, |w|)`
/// (the [`reference::close`] predicate).
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Relative term, scaled by the larger magnitude of the two operands.
    pub rel: f64,
    /// Absolute floor for results near zero.
    pub abs: f64,
}

impl Tolerance {
    /// Build a tolerance band.
    pub const fn new(rel: f64, abs: f64) -> Tolerance {
        Tolerance { rel, abs }
    }

    /// Default band for FP16 kernels: ~1% relative (a handful of half
    /// ulps through a short reduction) with a matching absolute floor.
    pub const fn half_default() -> Tolerance {
        Tolerance::new(1e-2, 1e-2)
    }

    /// Default band for f32 kernels.
    pub const fn float_default() -> Tolerance {
        Tolerance::new(1e-5, 1e-5)
    }

    /// Default band for INT8 quantized kernels: one stochastic-rounding
    /// step per operand at ~1% block scale granularity, accumulated over
    /// a short reduction — a ~5% band (Tango trains inside it).
    pub const fn i8_default() -> Tolerance {
        Tolerance::new(5e-2, 5e-2)
    }

    /// True when `got` is acceptably close to `want`.
    pub fn accepts(&self, got: f64, want: f64) -> bool {
        reference::close(got, want, self.rel, self.abs)
    }
}

/// How a kernel's flat output vector maps back to graph structure.
pub enum Layout<'a> {
    /// Row-major `[num_rows, f]` vertex output (SpMM-shaped).
    RowMajor { f: usize, degrees: &'a [u32] },
    /// One value per edge (SDDMM / edge-op shaped).
    PerEdge { rows: &'a [u32], degrees: &'a [u32] },
    /// One value per row (edge-reduce shaped).
    PerRow { degrees: &'a [u32] },
}

impl Layout<'_> {
    /// `(row, edge, degree)` context for flat element `index`.
    fn context(&self, index: usize) -> (Option<u32>, Option<usize>, Option<u32>) {
        match self {
            Layout::RowMajor { f, degrees } => {
                let r = (index / f) as u32;
                (Some(r), None, degrees.get(r as usize).copied())
            }
            Layout::PerEdge { rows, degrees } => {
                let r = rows[index];
                (Some(r), Some(index), degrees.get(r as usize).copied())
            }
            Layout::PerRow { degrees } => (Some(index as u32), None, degrees.get(index).copied()),
        }
    }
}

/// FP16 ulp distance between two values, via the monotone ordered-integer
/// mapping of binary16 bit patterns (sign-magnitude → two's-complement
/// order). `None` when either value is non-finite in half precision —
/// ulp distance across INF is meaningless.
pub fn ulp_f16(a: f64, b: f64) -> Option<u32> {
    fn ordered(v: f64) -> Option<i32> {
        let h = Half::from_f32_raw(v as f32);
        if !h.is_finite() {
            return None;
        }
        let bits = h.to_bits();
        Some(if bits & 0x8000 != 0 { -((bits & 0x7FFF) as i32) } else { bits as i32 })
    }
    Some(ordered(a)?.abs_diff(ordered(b)?))
}

/// One element where kernel and reference disagree beyond tolerance.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Flat index into the kernel's output vector.
    pub index: usize,
    /// Output row (vertex id) the element belongs to, if the layout knows.
    pub row: Option<u32>,
    /// Edge id, for edge-shaped outputs.
    pub edge: Option<usize>,
    /// Degree of `row` — overflow bugs cluster on hub rows.
    pub degree: Option<u32>,
    /// Kernel value (widened to f64).
    pub got: f64,
    /// Reference value.
    pub want: f64,
    /// `|got − want|` (infinite when `got` is non-finite).
    pub abs_err: f64,
    /// Error in binary16 ulps; `None` when either side is non-finite
    /// in half precision.
    pub ulp_f16: Option<u32>,
    /// The kernel produced INF/NaN where the reference is finite — the
    /// Fig. 1c overflow signature, not an ordinary rounding mismatch.
    pub got_nonfinite_ref_finite: bool,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.index)?;
        if let Some(r) = self.row {
            write!(f, " row {r}")?;
        }
        if let Some(e) = self.edge {
            write!(f, " edge {e}")?;
        }
        if let Some(d) = self.degree {
            write!(f, " (degree {d})")?;
        }
        write!(f, ": got {}, want {}", self.got, self.want)?;
        if self.got_nonfinite_ref_finite {
            write!(f, " — NON-FINITE where reference is finite")?;
        } else {
            write!(f, ", err {:.3e}", self.abs_err)?;
            if let Some(u) = self.ulp_f16 {
                write!(f, " ({u} f16 ulps)")?;
            }
        }
        Ok(())
    }
}

/// Structured outcome of one kernel-vs-reference comparison.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// Which kernel was checked.
    pub kernel: &'static str,
    /// Elements compared.
    pub checked: usize,
    /// Elements outside tolerance.
    pub mismatches: usize,
    /// First out-of-tolerance element in index order.
    pub first: Option<Divergence>,
    /// Element with the largest absolute error (non-finite sorts last,
    /// i.e. wins).
    pub worst: Option<Divergence>,
    /// Kernel elements that are INF/NaN.
    pub nonfinite_got: usize,
    /// Reference elements that are INF/NaN (expected overflow, e.g. an
    /// intentionally out-of-range input).
    pub nonfinite_ref: usize,
    /// The band the comparison used.
    pub tol: Tolerance,
}

impl DivergenceReport {
    /// True when every element was within tolerance.
    pub fn is_ok(&self) -> bool {
        self.mismatches == 0
    }

    /// Panic with the full report unless [`Self::is_ok`].
    pub fn assert_ok(&self) {
        assert!(self.is_ok(), "{self}");
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(
                f,
                "{}: OK ({} elements within rel {:.1e} / abs {:.1e})",
                self.kernel, self.checked, self.tol.rel, self.tol.abs
            );
        }
        writeln!(
            f,
            "{}: {}/{} elements diverge (rel {:.1e} / abs {:.1e}); \
             {} non-finite in kernel output, {} in reference",
            self.kernel,
            self.mismatches,
            self.checked,
            self.tol.rel,
            self.tol.abs,
            self.nonfinite_got,
            self.nonfinite_ref
        )?;
        if let Some(d) = &self.first {
            writeln!(f, "  first: {d}")?;
        }
        if let Some(d) = &self.worst {
            write!(f, "  worst: {d}")?;
        }
        Ok(())
    }
}

fn compare_f64(
    kernel: &'static str,
    got: &[f64],
    want: &[f64],
    layout: &Layout<'_>,
    tol: Tolerance,
) -> DivergenceReport {
    assert_eq!(
        got.len(),
        want.len(),
        "{kernel}: output length {} vs reference {}",
        got.len(),
        want.len()
    );
    let mut report = DivergenceReport {
        kernel,
        checked: got.len(),
        mismatches: 0,
        first: None,
        worst: None,
        nonfinite_got: 0,
        nonfinite_ref: 0,
        tol,
    };
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if !g.is_finite() {
            report.nonfinite_got += 1;
        }
        if !w.is_finite() {
            report.nonfinite_ref += 1;
        }
        if tol.accepts(g, w) {
            continue;
        }
        report.mismatches += 1;
        let (row, edge, degree) = layout.context(i);
        let d = Divergence {
            index: i,
            row,
            edge,
            degree,
            got: g,
            want: w,
            abs_err: (g - w).abs(),
            ulp_f16: ulp_f16(g, w),
            got_nonfinite_ref_finite: !g.is_finite() && w.is_finite(),
        };
        let worse = match &report.worst {
            None => true,
            Some(prev) => {
                // Non-finite beats any finite error; otherwise larger wins.
                (d.abs_err > prev.abs_err && !prev.abs_err.is_nan())
                    || (d.abs_err.is_nan() && !prev.abs_err.is_nan())
            }
        };
        if worse {
            report.worst = Some(d.clone());
        }
        if report.first.is_none() {
            report.first = Some(d);
        }
    }
    report
}

/// Compare a half kernel output against an f64 reference.
pub fn compare_half(
    kernel: &'static str,
    got: &[Half],
    want: &[f64],
    layout: &Layout<'_>,
    tol: Tolerance,
) -> DivergenceReport {
    compare_f64(kernel, &reference::half_to_f64(got), want, layout, tol)
}

/// Compare an f32 kernel output against an f64 reference.
pub fn compare_f32(
    kernel: &'static str,
    got: &[f32],
    want: &[f64],
    layout: &Layout<'_>,
    tol: Tolerance,
) -> DivergenceReport {
    compare_f64(kernel, &reference::f32_to_f64(got), want, layout, tol)
}

// ---------------------------------------------------------------------
// check_* wrappers: one per public kernel. Each runs the kernel and its
// f64 reference and returns (output, stats, report).
// ---------------------------------------------------------------------

fn weights_f64(w: &EdgeWeights<'_>, nnz: usize) -> Vec<f64> {
    (0..nnz).map(|e| w.get(e).to_f64()).collect()
}

fn weights_f32_f64(w: &EdgeWeightsF32<'_>, nnz: usize) -> Vec<f64> {
    (0..nnz).map(|e| w.get(e) as f64).collect()
}

/// Oracle for [`halfgnn_spmm::spmm`] (HalfGNN SpMMv/SpMMve).
#[allow(clippy::too_many_arguments)]
pub fn check_spmm(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    cfg: &SpmmConfig,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = halfgnn_spmm::spmm(dev, coo, w, x, f, row_scale, cfg);
    let want = spmm_ref_f64(
        coo,
        &weights_f64(&w, coo.nnz()),
        &reference::half_to_f64(x),
        f,
        row_scale.map(reference::half_to_f64).as_deref(),
    );
    let degrees = coo.degrees();
    let report =
        compare_half("halfgnn_spmm", &got, &want, &Layout::RowMajor { f, degrees: &degrees }, tol);
    (got, stats, report)
}

/// Exact f64 SpMM with arbitrary f64 edge weights (the [`reference::spmm_f64`]
/// entry point takes half weights; baselines carry f32 weights, so the
/// oracle needs a weight-agnostic reference).
fn spmm_ref_f64(coo: &Coo, w: &[f64], x: &[f64], f: usize, row_scale: Option<&[f64]>) -> Vec<f64> {
    let n = coo.num_rows();
    let mut y = vec![0f64; n * f];
    for (e, &we) in w.iter().enumerate() {
        let (r, c) = coo.edge(e);
        let xr = &x[c as usize * f..(c as usize + 1) * f];
        let yr = &mut y[r as usize * f..(r as usize + 1) * f];
        for (yo, &xv) in yr.iter_mut().zip(xr) {
            *yo += we * xv;
        }
    }
    if let Some(s) = row_scale {
        for r in 0..n {
            for v in &mut y[r * f..(r + 1) * f] {
                *v *= s[r];
            }
        }
    }
    y
}

/// Oracle for [`halfgnn_spmm::spmm_vertex_parallel`].
#[allow(clippy::too_many_arguments)] // mirrors the kernel signature + tol
pub fn check_spmm_vertex_parallel(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    scaling: ScalePlacement,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = halfgnn_spmm::spmm_vertex_parallel(dev, csr, w, x, f, row_scale, scaling);
    let coo = csr.to_coo();
    let want = spmm_ref_f64(
        &coo,
        &weights_f64(&w, coo.nnz()),
        &reference::half_to_f64(x),
        f,
        row_scale.map(reference::half_to_f64).as_deref(),
    );
    let degrees = csr.degrees();
    let report = compare_half(
        "halfgnn_spmm_vertex_parallel",
        &got,
        &want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`quant_spmm::spmm_i8`] (INT8 quantized SpMM). The
/// reference is the exact f64 product of the *unquantized* operands, so
/// the report measures the full quantization + accumulation error — what
/// the tuner gates I8 plan candidates on (alongside the saturation
/// window; run under [`halfgnn_half::quant::isolated`] to collect both).
#[allow(clippy::too_many_arguments)]
pub fn check_spmm_i8(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    tiling: crate::common::Tiling,
    seed: u64,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = quant_spmm::spmm_i8(dev, csr, w, x, f, row_scale, tiling, seed);
    let coo = csr.to_coo();
    let want = spmm_ref_f64(
        &coo,
        &weights_f64(&w, coo.nnz()),
        &reference::half_to_f64(x),
        f,
        row_scale.map(reference::half_to_f64).as_deref(),
    );
    let degrees = csr.degrees();
    let report =
        compare_half("spmm_i8", &got, &want, &Layout::RowMajor { f, degrees: &degrees }, tol);
    (got, stats, report)
}

/// Oracle for [`halfgnn_spmm::edge_reduce`].
pub fn check_edge_reduce(
    dev: &DeviceConfig,
    coo: &Coo,
    w: &[Half],
    op: Reduce,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = halfgnn_spmm::edge_reduce(dev, coo, w, op);
    let want = reference::edge_reduce_f64(coo, &reference::half_to_f64(w), op);
    let degrees = coo.degrees();
    let report =
        compare_half("edge_reduce", &got, &want, &Layout::PerRow { degrees: &degrees }, tol);
    (got, stats, report)
}

/// Oracle for [`halfgnn_sddmm::sddmm`].
pub fn check_sddmm(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
    width: VectorWidth,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = halfgnn_sddmm::sddmm(dev, coo, u, v, f, width);
    let want = reference::sddmm_f64(coo, &reference::half_to_f64(u), &reference::half_to_f64(v), f);
    let degrees = coo.degrees();
    let report = compare_half(
        "halfgnn_sddmm",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`baseline::cusparse::spmm_float`].
pub fn check_cusparse_spmm_float(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeightsF32<'_>,
    x: &[f32],
    f: usize,
    row_scale: Option<&[f32]>,
    tol: Tolerance,
) -> (Vec<f32>, KernelStats, DivergenceReport) {
    let (got, stats) = baseline::cusparse::spmm_float(dev, coo, w, x, f, row_scale);
    let want = spmm_ref_f64(
        coo,
        &weights_f32_f64(&w, coo.nnz()),
        &reference::f32_to_f64(x),
        f,
        row_scale.map(reference::f32_to_f64).as_deref(),
    );
    let degrees = coo.degrees();
    let report = compare_f32(
        "cusparse_spmm_float",
        &got,
        &want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`baseline::cusparse::spmm_half`].
pub fn check_cusparse_spmm_half(
    dev: &DeviceConfig,
    coo: &Coo,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    row_scale: Option<&[Half]>,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = baseline::cusparse::spmm_half(dev, coo, w, x, f, row_scale);
    let want = spmm_ref_f64(
        coo,
        &weights_f64(&w, coo.nnz()),
        &reference::half_to_f64(x),
        f,
        row_scale.map(reference::half_to_f64).as_deref(),
    );
    let degrees = coo.degrees();
    let report = compare_half(
        "cusparse_spmm_half",
        &got,
        &want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`baseline::ge_spmm::spmm_float`].
pub fn check_ge_spmm_float(
    dev: &DeviceConfig,
    csr: &Csr,
    x: &[f32],
    f: usize,
    tol: Tolerance,
) -> (Vec<f32>, KernelStats, DivergenceReport) {
    let (got, stats) = baseline::ge_spmm::spmm_float(dev, csr, x, f);
    let coo = csr.to_coo();
    let want = spmm_ref_f64(&coo, &vec![1.0; coo.nnz()], &reference::f32_to_f64(x), f, None);
    let degrees = csr.degrees();
    let report =
        compare_f32("ge_spmm_float", &got, &want, &Layout::RowMajor { f, degrees: &degrees }, tol);
    (got, stats, report)
}

/// Oracle for [`baseline::dgl_sddmm::sddmm_float`].
pub fn check_dgl_sddmm_float(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[f32],
    v: &[f32],
    f: usize,
    tol: Tolerance,
) -> (Vec<f32>, KernelStats, DivergenceReport) {
    let (got, stats) = baseline::dgl_sddmm::sddmm_float(dev, coo, u, v, f);
    let want = reference::sddmm_f64(coo, &reference::f32_to_f64(u), &reference::f32_to_f64(v), f);
    let degrees = coo.degrees();
    let report = compare_f32(
        "dgl_sddmm_float",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`baseline::dgl_sddmm::sddmm_half`].
pub fn check_dgl_sddmm_half(
    dev: &DeviceConfig,
    coo: &Coo,
    u: &[Half],
    v: &[Half],
    f: usize,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = baseline::dgl_sddmm::sddmm_half(dev, coo, u, v, f);
    let want = reference::sddmm_f64(coo, &reference::half_to_f64(u), &reference::half_to_f64(v), f);
    let degrees = coo.degrees();
    let report = compare_half(
        "dgl_sddmm_half",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`huang::spmm_float`].
pub fn check_huang_spmm_float(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeightsF32<'_>,
    x: &[f32],
    f: usize,
    tol: Tolerance,
) -> (Vec<f32>, KernelStats, DivergenceReport) {
    let (got, stats) = huang::spmm_float(dev, csr, w, x, f);
    let coo = csr.to_coo();
    let want =
        spmm_ref_f64(&coo, &weights_f32_f64(&w, coo.nnz()), &reference::f32_to_f64(x), f, None);
    let degrees = csr.degrees();
    let report = compare_f32(
        "huang_spmm_float",
        &got,
        &want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`huang::spmm_half2`] (and, with `grouped`, `spmm_half2_g64`).
pub fn check_huang_spmm_half2(
    dev: &DeviceConfig,
    csr: &Csr,
    w: EdgeWeights<'_>,
    x: &[Half],
    f: usize,
    grouped: bool,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = if grouped {
        huang::spmm_half2_g64(dev, csr, w, x, f)
    } else {
        huang::spmm_half2(dev, csr, w, x, f)
    };
    let coo = csr.to_coo();
    let want = spmm_ref_f64(&coo, &weights_f64(&w, coo.nnz()), &reference::half_to_f64(x), f, None);
    let degrees = csr.degrees();
    let report = compare_half(
        "huang_spmm_half2",
        &got,
        &want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::src_dst_add_leakyrelu`].
pub fn check_src_dst_add_leakyrelu(
    dev: &DeviceConfig,
    coo: &Coo,
    s_src: &[Half],
    s_dst: &[Half],
    slope: f32,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::src_dst_add_leakyrelu(dev, coo, s_src, s_dst, slope);
    let want = reference::src_dst_add_leakyrelu_f64(
        coo,
        &reference::half_to_f64(s_src),
        &reference::half_to_f64(s_dst),
        slope as f64,
    );
    let degrees = coo.degrees();
    let report = compare_half(
        "edge_add_leakyrelu",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::sub_row_exp`] (shadow or AMP path).
pub fn check_sub_row_exp(
    dev: &DeviceConfig,
    coo: &Coo,
    e: &[Half],
    m: &[Half],
    shadow: bool,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::sub_row_exp(dev, coo, e, m, shadow);
    let want =
        reference::sub_row_exp_f64(coo, &reference::half_to_f64(e), &reference::half_to_f64(m));
    let degrees = coo.degrees();
    let report = compare_half(
        "edge_sub_exp",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::div_row`].
pub fn check_div_row(
    dev: &DeviceConfig,
    coo: &Coo,
    e: &[Half],
    z: &[Half],
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::div_row(dev, coo, e, z);
    let want = reference::div_row_f64(coo, &reference::half_to_f64(e), &reference::half_to_f64(z));
    let degrees = coo.degrees();
    let report = compare_half(
        "edge_div_row",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::mul`].
pub fn check_edge_mul(
    dev: &DeviceConfig,
    coo: &Coo,
    a: &[Half],
    b: &[Half],
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::mul(dev, coo, a, b);
    let want = reference::edge_mul_f64(&reference::half_to_f64(a), &reference::half_to_f64(b));
    let degrees = coo.degrees();
    let report = compare_half(
        "edge_mul",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::softmax_grad`].
pub fn check_softmax_grad(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[Half],
    dalpha: &[Half],
    t: &[Half],
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::softmax_grad(dev, coo, alpha, dalpha, t);
    let want = reference::softmax_grad_f64(
        coo,
        &reference::half_to_f64(alpha),
        &reference::half_to_f64(dalpha),
        &reference::half_to_f64(t),
    );
    let degrees = coo.degrees();
    let report = compare_half(
        "edge_softmax_grad",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::leakyrelu_grad`].
pub fn check_leakyrelu_grad(
    dev: &DeviceConfig,
    coo: &Coo,
    pre: &[Half],
    grad: &[Half],
    slope: f32,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::leakyrelu_grad(dev, coo, pre, grad, slope);
    let want = reference::leakyrelu_grad_f64(
        &reference::half_to_f64(pre),
        &reference::half_to_f64(grad),
        slope as f64,
    );
    let degrees = coo.degrees();
    let report = compare_half(
        "edge_leakyrelu_grad",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Fold several per-buffer reports into one, so a fused kernel with
/// multiple outputs still yields a single report. Counts are summed;
/// `first` is the first failing buffer's first divergence and `worst` the
/// largest error across all buffers.
fn combine_reports(kernel: &'static str, parts: Vec<DivergenceReport>) -> DivergenceReport {
    let tol = parts[0].tol;
    let mut out = DivergenceReport {
        kernel,
        checked: 0,
        mismatches: 0,
        first: None,
        worst: None,
        nonfinite_got: 0,
        nonfinite_ref: 0,
        tol,
    };
    for p in parts {
        out.checked += p.checked;
        out.mismatches += p.mismatches;
        out.nonfinite_got += p.nonfinite_got;
        out.nonfinite_ref += p.nonfinite_ref;
        if out.first.is_none() {
            out.first = p.first;
        }
        let worse = match (&out.worst, &p.worst) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some(cur), Some(new)) => {
                (new.abs_err > cur.abs_err && !cur.abs_err.is_nan())
                    || (new.abs_err.is_nan() && !cur.abs_err.is_nan())
            }
        };
        if worse {
            out.worst = p.worst;
        }
    }
    out
}

/// Oracle for [`fused::fused_attn_forward`]: checks all three outputs
/// (`e`, `α`, aggregated `out`) against the composed unfused f64 chain
/// `src_dst_add_leakyrelu → edge_reduce(Max) → sub_row_exp →
/// edge_reduce(Sum) → div_row → spmm`.
#[allow(clippy::too_many_arguments)] // mirrors the kernel signature + tol
pub fn check_fused_attn_forward(
    dev: &DeviceConfig,
    coo: &Coo,
    s_row: &[Half],
    s_col: &[Half],
    slope: f32,
    z: &[Half],
    f: usize,
    tol: Tolerance,
) -> (fused::FusedAttnForward, KernelStats, DivergenceReport) {
    let (got, stats) = fused::fused_attn_forward(dev, coo, s_row, s_col, slope, z, f);
    let sr = reference::half_to_f64(s_row);
    let sc = reference::half_to_f64(s_col);
    let e_want = reference::src_dst_add_leakyrelu_f64(coo, &sr, &sc, slope as f64);
    let m = reference::edge_reduce_f64(coo, &e_want, Reduce::Max);
    let num = reference::sub_row_exp_f64(coo, &e_want, &m);
    let zsum = reference::edge_reduce_f64(coo, &num, Reduce::Sum);
    let alpha_want = reference::div_row_f64(coo, &num, &zsum);
    let out_want = spmm_ref_f64(coo, &alpha_want, &reference::half_to_f64(z), f, None);
    let degrees = coo.degrees();
    let edge_layout = Layout::PerEdge { rows: coo.rows(), degrees: &degrees };
    let r_e = compare_half("fused_attn.e", &got.e, &e_want, &edge_layout, tol);
    let r_a = compare_half("fused_attn.alpha", &got.alpha, &alpha_want, &edge_layout, tol);
    let r_o = compare_half(
        "fused_attn.out",
        &got.out,
        &out_want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    let report = combine_reports("fused_attn_forward", vec![r_e, r_a, r_o]);
    (got, stats, report)
}

/// Oracle for [`fused::fused_softmax_grad`]: the f64 reference composes
/// the unfused backward chain `edge_mul → edge_reduce(Sum) →
/// softmax_grad → leakyrelu_grad`.
pub fn check_fused_softmax_grad(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[Half],
    dalpha: &[Half],
    e: &[Half],
    slope: f32,
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = fused::fused_softmax_grad(dev, coo, alpha, dalpha, e, slope);
    let a = reference::half_to_f64(alpha);
    let da = reference::half_to_f64(dalpha);
    let ef = reference::half_to_f64(e);
    let prod = reference::edge_mul_f64(&a, &da);
    let t = reference::edge_reduce_f64(coo, &prod, Reduce::Sum);
    let soft = reference::softmax_grad_f64(coo, &a, &da, &t);
    let want = reference::leakyrelu_grad_f64(&ef, &soft, slope as f64);
    let degrees = coo.degrees();
    let report = compare_half(
        "fused_softmax_grad",
        &got,
        &want,
        &Layout::PerEdge { rows: coo.rows(), degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`edge_ops::edge_reduce_f32`].
pub fn check_edge_reduce_f32(
    dev: &DeviceConfig,
    coo: &Coo,
    w: &[f32],
    op: Reduce,
    tol: Tolerance,
) -> (Vec<f32>, KernelStats, DivergenceReport) {
    let (got, stats) = edge_ops::edge_reduce_f32(dev, coo, w, op);
    let want = reference::edge_reduce_f64(coo, &reference::f32_to_f64(w), op);
    let degrees = coo.degrees();
    let report =
        compare_f32("edge_reduce_f32", &got, &want, &Layout::PerRow { degrees: &degrees }, tol);
    (got, stats, report)
}

/// Oracle for [`dist::halo_gather_half`]: the reference is direct f64
/// indexing of the named rows, so any tolerance violation is a packing
/// bug, not rounding (the gather copies bits).
pub fn check_halo_gather(
    dev: &DeviceConfig,
    x: &[Half],
    f: usize,
    halo: &[u32],
    tol: Tolerance,
) -> (Vec<Half>, KernelStats, DivergenceReport) {
    let (got, stats) = dist::halo_gather_half(dev, x, f, halo);
    let mut want = Vec::with_capacity(halo.len() * f);
    for &v in halo {
        want.extend(x[v as usize * f..(v as usize + 1) * f].iter().map(|h| h.to_f64()));
    }
    // Degree context is meaningless for a gather; every packed row reads 1.
    let degrees = vec![1u32; halo.len()];
    let report = compare_half(
        "halo_gather_f16",
        &got,
        &want,
        &Layout::RowMajor { f, degrees: &degrees },
        tol,
    );
    (got, stats, report)
}

/// Oracle for [`dist::allreduce_f16_discretized`]: the reference is the
/// exact f64 sum of the shard partials; divergence beyond the half band
/// means the discretized exponent or the wire accumulation is wrong.
pub fn check_allreduce_f16(
    dev: &DeviceConfig,
    partials: &[Vec<f32>],
    bucket: usize,
    tol: Tolerance,
) -> (Vec<f32>, KernelStats, DivergenceReport) {
    let (got, stats) = dist::allreduce_f16_discretized(dev, partials, bucket);
    let n = partials.first().map_or(0, Vec::len);
    let want: Vec<f64> = (0..n).map(|i| partials.iter().map(|p| p[i] as f64).sum()).collect();
    let degrees = vec![partials.len() as u32; n];
    let report =
        compare_f32("allreduce_f16_disc", &got, &want, &Layout::PerRow { degrees: &degrees }, tol);
    (got, stats, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halfgnn_graph::gen;
    use halfgnn_half::slice::f32_slice_to_half;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dev() -> DeviceConfig {
        DeviceConfig::a100_like()
    }

    fn graph(seed: u64) -> Coo {
        let edges = gen::erdos_renyi(120, 700, seed);
        Csr::from_edges(120, 120, &edges).symmetrized_with_self_loops().to_coo()
    }

    fn random_halves(n: usize, scale: f32, seed: u64) -> Vec<Half> {
        let mut rng = StdRng::seed_from_u64(seed);
        f32_slice_to_half(&(0..n).map(|_| rng.gen_range(-scale..scale)).collect::<Vec<_>>())
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_f16(1.0, 1.0), Some(0));
        // 1.0 and the next representable half differ by one ulp.
        let next = Half::from_bits(Half::from_f32(1.0).to_bits() + 1).to_f64();
        assert_eq!(ulp_f16(1.0, next), Some(1));
        // Crossing zero: -ulp to +ulp is two steps apart (through ±0).
        assert!(ulp_f16(-6e-8, 6e-8).unwrap() <= 2);
        assert_eq!(ulp_f16(1e9, 1.0), None); // INF in f16
    }

    #[test]
    fn clean_kernel_gets_ok_report() {
        let g = graph(1);
        let f = 16;
        let x = random_halves(g.num_cols() * f, 0.5, 2);
        let scales = crate::common::row_scales_mean(&g.degrees());
        let (_, _, report) = check_spmm(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            Some(&scales),
            &SpmmConfig::default(),
            Tolerance::half_default(),
        );
        report.assert_ok();
        assert_eq!(report.mismatches, 0);
        assert!(report.checked > 0);
        assert!(format!("{report}").contains("OK"));
    }

    #[test]
    fn corrupted_output_names_first_bad_element() {
        // The acceptance criterion: corrupt one element of a kernel's
        // output and the report must name its index, row, and edge status.
        let g = graph(3);
        let f = 8;
        let x = random_halves(g.num_cols() * f, 0.5, 4);
        let cfg = SpmmConfig { scaling: ScalePlacement::None, ..SpmmConfig::default() };
        let (mut got, _) = halfgnn_spmm::spmm(&dev(), &g, EdgeWeights::Ones, &x, f, None, &cfg);
        let want = reference::spmm_f64(
            &g,
            EdgeWeights::Ones,
            &reference::half_to_f64(&x),
            f,
            Reduce::Sum,
            None,
        );
        let bad = 3 * f + 5; // row 3, feature 5
        got[bad] = Half::from_f32(f32::INFINITY);
        let degrees = g.degrees();
        let report = compare_half(
            "mutated",
            &got,
            &want,
            &Layout::RowMajor { f, degrees: &degrees },
            Tolerance::half_default(),
        );
        assert!(!report.is_ok());
        assert_eq!(report.mismatches, 1);
        let first = report.first.as_ref().unwrap();
        assert_eq!(first.index, bad);
        assert_eq!(first.row, Some(3));
        assert_eq!(first.degree, Some(degrees[3]));
        assert!(first.got_nonfinite_ref_finite);
        assert_eq!(first.ulp_f16, None);
        assert_eq!(report.nonfinite_got, 1);
        let text = format!("{report}");
        assert!(text.contains("NON-FINITE"), "{text}");
        assert!(text.contains("row 3"), "{text}");
    }

    #[test]
    fn edge_layout_reports_edge_id_and_degree() {
        let g = graph(5);
        let f = 16;
        let u = random_halves(g.num_rows() * f, 0.5, 6);
        let v = random_halves(g.num_cols() * f, 0.5, 7);
        let (mut got, _) = halfgnn_sddmm::sddmm(&dev(), &g, &u, &v, f, VectorWidth::Half2);
        let want =
            reference::sddmm_f64(&g, &reference::half_to_f64(&u), &reference::half_to_f64(&v), f);
        got[17] = Half::from_f32(got[17].to_f32() + 100.0);
        let degrees = g.degrees();
        let report = compare_half(
            "mutated_sddmm",
            &got,
            &want,
            &Layout::PerEdge { rows: g.rows(), degrees: &degrees },
            Tolerance::half_default(),
        );
        assert_eq!(report.mismatches, 1);
        let first = report.first.unwrap();
        assert_eq!(first.edge, Some(17));
        assert_eq!(first.row, Some(g.rows()[17]));
        assert_eq!(first.degree, Some(degrees[g.rows()[17] as usize]));
        assert!(first.ulp_f16.is_some());
    }

    #[test]
    fn worst_tracks_largest_error() {
        let degrees = [1u32, 1, 1];
        let got = [Half::from_f32(1.5), Half::from_f32(5.0), Half::from_f32(1.0)];
        let want = [1.0, 1.0, 1.0];
        let report = compare_half(
            "worst",
            &got,
            &want,
            &Layout::PerRow { degrees: &degrees },
            Tolerance::new(1e-3, 1e-3),
        );
        assert_eq!(report.mismatches, 2);
        assert_eq!(report.first.unwrap().index, 0);
        assert_eq!(report.worst.unwrap().index, 1);
    }

    #[test]
    fn every_kernel_family_is_callable_through_the_oracle() {
        // Smoke coverage of all check_* wrappers on one small graph.
        let d = dev();
        let g = graph(8);
        let csr = Csr::from_coo(&g);
        let f = 8;
        let tol_h = Tolerance::half_default();
        let tol_f = Tolerance::float_default();
        let xh = random_halves(g.num_cols() * f, 0.3, 10);
        let xf: Vec<f32> = xh.iter().map(|h| h.to_f32()).collect();
        let wh = random_halves(g.nnz(), 0.3, 11);
        let wf: Vec<f32> = wh.iter().map(|h| h.to_f32()).collect();
        let row_h = random_halves(g.num_rows(), 0.3, 12);
        let scales = crate::common::row_scales_mean(&g.degrees());
        let no_scale = SpmmConfig { scaling: ScalePlacement::None, ..SpmmConfig::default() };

        check_spmm(&d, &g, EdgeWeights::Values(&wh), &xh, f, None, &no_scale, tol_h).2.assert_ok();
        check_spmm(&d, &g, EdgeWeights::Ones, &xh, f, Some(&scales), &SpmmConfig::default(), tol_h)
            .2
            .assert_ok();
        check_spmm_vertex_parallel(
            &d,
            &csr,
            EdgeWeights::Ones,
            &xh,
            f,
            Some(&scales),
            ScalePlacement::Discretized,
            tol_h,
        )
        .2
        .assert_ok();
        check_edge_reduce(&d, &g, &wh, Reduce::Max, tol_h).2.assert_ok();
        check_edge_reduce(&d, &g, &wh, Reduce::Sum, tol_h).2.assert_ok();
        check_sddmm(&d, &g, &xh, &xh, f, VectorWidth::Half8, tol_h).2.assert_ok();
        check_cusparse_spmm_float(&d, &g, EdgeWeightsF32::Values(&wf), &xf, f, None, tol_f)
            .2
            .assert_ok();
        check_cusparse_spmm_half(&d, &g, EdgeWeights::Values(&wh), &xh, f, None, tol_h)
            .2
            .assert_ok();
        check_ge_spmm_float(&d, &csr, &xf, f, tol_f).2.assert_ok();
        check_dgl_sddmm_float(&d, &g, &xf, &xf, f, tol_f).2.assert_ok();
        check_dgl_sddmm_half(&d, &g, &xh, &xh, f, tol_h).2.assert_ok();
        check_huang_spmm_float(&d, &csr, EdgeWeightsF32::Ones, &xf, f, tol_f).2.assert_ok();
        check_huang_spmm_half2(&d, &csr, EdgeWeights::Ones, &xh, f, false, tol_h).2.assert_ok();
        check_huang_spmm_half2(&d, &csr, EdgeWeights::Ones, &xh, f, true, tol_h).2.assert_ok();
        check_src_dst_add_leakyrelu(&d, &g, &row_h, &row_h, 0.2, tol_h).2.assert_ok();
        let (m, _, r) = check_edge_reduce(&d, &g, &wh, Reduce::Max, tol_h);
        r.assert_ok();
        let (num, _, r) = check_sub_row_exp(&d, &g, &wh, &m, true, tol_h);
        r.assert_ok();
        let (z, _, r) = check_edge_reduce(&d, &g, &num, Reduce::Sum, tol_h);
        r.assert_ok();
        check_div_row(&d, &g, &num, &z, tol_h).2.assert_ok();
        check_edge_mul(&d, &g, &wh, &wh, tol_h).2.assert_ok();
        let t = random_halves(g.num_rows(), 0.3, 13);
        check_softmax_grad(&d, &g, &wh, &wh, &t, tol_h).2.assert_ok();
        check_leakyrelu_grad(&d, &g, &wh, &wh, 0.1, tol_h).2.assert_ok();
        let zf = random_halves(g.num_cols() * f, 0.3, 14);
        let (fwd, _, r) = check_fused_attn_forward(&d, &g, &row_h, &row_h, 0.2, &zf, f, tol_h);
        r.assert_ok();
        check_fused_softmax_grad(&d, &g, &fwd.alpha, &wh, &fwd.e, 0.2, tol_h).2.assert_ok();
        check_edge_reduce_f32(&d, &g, &wf, Reduce::Sum, tol_f).2.assert_ok();
        check_edge_reduce_f32(&d, &g, &wf, Reduce::Max, tol_f).2.assert_ok();
        let halo: Vec<u32> = (0..g.num_cols() as u32).step_by(7).collect();
        check_halo_gather(&d, &xh, f, &halo, tol_h).2.assert_ok();
        let partials: Vec<Vec<f32>> = (0..3).map(|_| wf.clone()).collect();
        check_allreduce_f16(&d, &partials, 64, tol_h).2.assert_ok();
    }

    #[test]
    fn overflow_divergence_is_flagged_as_nonfinite() {
        // Drive cusparse half SpMM into genuine FP16 overflow: a degree-120
        // hub row summing features of 600 reaches 72000 > 65504.
        let edges: Vec<(u32, u32)> = (0..120u32).map(|c| (0, c)).collect();
        let g = Coo::from_edges(120, 120, &edges);
        let f = 2;
        let x = vec![Half::from_f32(600.0); g.num_cols() * f];
        let (_, _, report) = check_cusparse_spmm_half(
            &dev(),
            &g,
            EdgeWeights::Ones,
            &x,
            f,
            None,
            Tolerance::half_default(),
        );
        assert!(!report.is_ok());
        assert!(report.nonfinite_got > 0);
        let first = report.first.unwrap();
        assert!(first.got_nonfinite_ref_finite);
        assert_eq!(first.row, Some(0)); // the hub row overflows
        assert!(first.degree.unwrap() > 100);
    }
}
