//! Shared kernel vocabulary: reduction modes, scaling placement, write
//! strategies, vector widths, and the edge-tiling geometry.

use halfgnn_half::Half;

/// Where degree-norm scaling happens relative to the SpMM reduction
/// (§5.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalePlacement {
    /// No scaling: plain sum (GIN's default aggregation — overflows).
    None,
    /// Scale once after the full reduction (current systems; overflow has
    /// already happened by then).
    PostReduction,
    /// Scale every dot product before reducing (no overflow, extra
    /// arithmetic, underflow risk).
    PreReduction,
    /// **The paper's contribution**: scale at the end of each discretized
    /// batch of neighbors — overflow-safe at no extra cost.
    Discretized,
}

/// How conflicting writes are resolved (§5.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteStrategy {
    /// Atomic read-modify-write per conflicting element (costly for half).
    Atomic,
    /// Warp-local direct writes + intra-CTA shared-memory combine +
    /// staging buffer and follow-up kernel.
    Staged,
}

/// SpMM reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reduce {
    /// Sum of neighbor contributions.
    Sum,
    /// Maximum (edge-softmax's `m_i`; never overflows).
    Max,
}

/// Data-load vector width for SDDMM (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VectorWidth {
    /// Scalar half loads: 64 B per warp instruction.
    Half1,
    /// Native half2: 128 B.
    Half2,
    /// Proposed half4 via float2: 256 B.
    Half4,
    /// Proposed half8 via float4: 512 B.
    Half8,
}

impl VectorWidth {
    /// Lanes of half data per thread per load.
    pub fn lanes(self) -> usize {
        match self {
            VectorWidth::Half1 => 1,
            VectorWidth::Half2 => 2,
            VectorWidth::Half4 => 4,
            VectorWidth::Half8 => 8,
        }
    }

    /// Bytes per thread per load instruction.
    pub fn bytes(self) -> usize {
        self.lanes() * 2
    }
}

/// Edge weights for SpMM: `SpMMv` (implicit ones) or `SpMMve` (explicit
/// edge-level tensor).
#[derive(Clone, Copy, Debug)]
pub enum EdgeWeights<'a> {
    /// All weights are 1.0 — GCN/GIN's kernel; no weight tensor is stored
    /// or loaded.
    Ones,
    /// Explicit per-edge weights (attention scores in GAT).
    Values(&'a [Half]),
}

impl<'a> EdgeWeights<'a> {
    /// Weight of edge `e`.
    #[inline(always)]
    pub fn get(&self, e: usize) -> Half {
        match self {
            EdgeWeights::Ones => Half::ONE,
            EdgeWeights::Values(w) => w[e],
        }
    }

    /// True for the SpMMv case.
    pub fn is_ones(&self) -> bool {
        matches!(self, EdgeWeights::Ones)
    }
}

/// Finiteness probe shared by the generic kernel skeletons, so the
/// simulator's [`halfgnn_sim::WarpCounters::nonfinite_values`] telemetry
/// works for both half and float functional values.
pub trait FiniteCheck: Copy {
    /// True for INF or NaN.
    fn is_nonfinite(&self) -> bool;
}

impl FiniteCheck for Half {
    fn is_nonfinite(&self) -> bool {
        !Half::is_finite(*self)
    }
}

impl FiniteCheck for f32 {
    fn is_nonfinite(&self) -> bool {
        !f32::is_finite(*self)
    }
}

/// Count of non-finite values in a slice (the per-tile quantity kernels
/// report through [`halfgnn_sim::WarpCtx::nonfinite_values`]).
pub fn count_nonfinite<T: FiniteCheck>(vals: &[T]) -> u64 {
    vals.iter().filter(|v| v.is_nonfinite()).count() as u64
}

/// Edge-tile geometry for edge-parallel kernels: the discretization unit of
/// §5.2. Defaults follow §4.1.1 ("at least 64 edges must be allocated to
/// each warp").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tiling {
    /// Edges assigned to each warp.
    pub edges_per_warp: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
}

impl Default for Tiling {
    fn default() -> Tiling {
        Tiling { edges_per_warp: 64, warps_per_cta: 4 }
    }
}

impl Tiling {
    /// Edges covered by one CTA.
    pub fn edges_per_cta(&self) -> usize {
        self.edges_per_warp * self.warps_per_cta
    }

    /// CTAs needed for `nnz` edges.
    pub fn num_ctas(&self, nnz: usize) -> usize {
        nnz.div_ceil(self.edges_per_cta()).max(1)
    }

    /// The edge range `[start, end)` of warp `w` in CTA `cta`.
    pub fn warp_range(&self, cta: usize, w: usize, nnz: usize) -> (usize, usize) {
        let start = cta * self.edges_per_cta() + w * self.edges_per_warp;
        let end = (start + self.edges_per_warp).min(nnz);
        (start.min(nnz), end)
    }

    /// Global CTA-id range `[lo, hi)` covering the edge window `[e0, e1)`.
    ///
    /// Sharded launches keep *global* CTA coordinates so every warp sees
    /// exactly the edge tile it would own in a single-device launch — this
    /// is what makes a sharded run bit-identical to the unsharded one
    /// (identical per-row segment cuts, identical commit order). The full
    /// window `(0, nnz)` reproduces [`Tiling::num_ctas`] exactly.
    pub fn cta_range(&self, e0: usize, e1: usize) -> (usize, usize) {
        debug_assert!(e0 <= e1);
        let lo = e0 / self.edges_per_cta();
        let hi = e1.div_ceil(self.edges_per_cta()).max(lo + 1);
        (lo, hi)
    }

    /// [`Tiling::warp_range`] clamped to the edge window `[e0, e1)`; `cta`
    /// is a *global* CTA id (see [`Tiling::cta_range`]).
    pub fn warp_range_in(&self, cta: usize, w: usize, e0: usize, e1: usize) -> (usize, usize) {
        let start = cta * self.edges_per_cta() + w * self.edges_per_warp;
        let end = (start + self.edges_per_warp).min(e1);
        (start.clamp(e0, e1), end.clamp(e0, e1))
    }
}

/// Convert per-row scale factors (e.g. 1/degree) to half precision once, as
/// the GPU kernel would keep them.
pub fn row_scales_mean(degrees: &[u32]) -> Vec<Half> {
    degrees
        .iter()
        .map(|&d| if d == 0 { Half::ZERO } else { Half::from_f32(1.0 / d as f32) })
        .collect()
}

/// Per-row `1/sqrt(degree)` factors for GCN's `both` norm.
pub fn row_scales_inv_sqrt(degrees: &[u32]) -> Vec<Half> {
    degrees
        .iter()
        .map(|&d| if d == 0 { Half::ZERO } else { Half::from_f32(1.0 / (d as f32).sqrt()) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_width_bytes() {
        assert_eq!(VectorWidth::Half1.bytes(), 2);
        assert_eq!(VectorWidth::Half2.bytes(), 4);
        assert_eq!(VectorWidth::Half4.bytes(), 8);
        assert_eq!(VectorWidth::Half8.bytes(), 16);
    }

    #[test]
    fn tiling_covers_all_edges() {
        let t = Tiling::default();
        assert_eq!(t.edges_per_cta(), 256);
        assert_eq!(t.num_ctas(1000), 4);
        assert_eq!(t.num_ctas(1024), 4);
        assert_eq!(t.num_ctas(1025), 5);
        assert_eq!(t.num_ctas(0), 1);
        // Ranges tile the edge list exactly.
        let nnz = 1000;
        let mut covered = 0;
        for cta in 0..t.num_ctas(nnz) {
            for w in 0..t.warps_per_cta {
                let (s, e) = t.warp_range(cta, w, nnz);
                assert_eq!(s, covered.min(nnz));
                covered = e.max(covered);
            }
        }
        assert_eq!(covered, nnz);
    }

    #[test]
    fn windowed_tiling_matches_global_tiling() {
        let t = Tiling::default();
        // Full window reproduces the unwindowed geometry exactly.
        for nnz in [0usize, 1, 255, 256, 1000, 1025] {
            assert_eq!(t.cta_range(0, nnz), (0, t.num_ctas(nnz)));
            for cta in 0..t.num_ctas(nnz) {
                for w in 0..t.warps_per_cta {
                    assert_eq!(t.warp_range_in(cta, w, 0, nnz), t.warp_range(cta, w, nnz));
                }
            }
        }
        // A window's warp ranges are the global ranges clamped to it.
        let (e0, e1) = (300usize, 700usize);
        let (lo, hi) = t.cta_range(e0, e1);
        assert_eq!((lo, hi), (1, 3));
        let mut covered = e0;
        for cta in lo..hi {
            for w in 0..t.warps_per_cta {
                let (s, e) = t.warp_range_in(cta, w, e0, e1);
                let (gs, ge) = t.warp_range(cta, w, usize::MAX);
                assert_eq!(s, gs.clamp(e0, e1));
                assert_eq!(e, ge.clamp(e0, e1));
                assert_eq!(s, covered.min(e1));
                covered = e.max(covered);
            }
        }
        assert_eq!(covered, e1);
        // Empty window inside a larger edge list: one empty CTA.
        let (lo, hi) = t.cta_range(512, 512);
        assert_eq!(hi - lo, 1);
        assert_eq!(t.warp_range_in(lo, 0, 512, 512), (512, 512));
    }

    #[test]
    fn edge_weights_accessor() {
        let w = [Half::from_f32(2.0), Half::from_f32(3.0)];
        assert_eq!(EdgeWeights::Ones.get(1), Half::ONE);
        assert_eq!(EdgeWeights::Values(&w).get(1).to_f32(), 3.0);
        assert!(EdgeWeights::Ones.is_ones());
        assert!(!EdgeWeights::Values(&w).is_ones());
    }

    #[test]
    fn row_scale_tables() {
        let d = [0u32, 1, 4, 16];
        let mean = row_scales_mean(&d);
        assert_eq!(mean[0], Half::ZERO);
        assert_eq!(mean[2].to_f32(), 0.25);
        let isq = row_scales_inv_sqrt(&d);
        assert_eq!(isq[3].to_f32(), 0.25);
        assert_eq!(isq[1].to_f32(), 1.0);
    }
}
