//! Edge-case coverage: degenerate graphs, extreme shapes, and boundary
//! feature lengths that the tiling/padding machinery must survive.

use halfgnn_graph::{Coo, Csr};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::Half;
use halfgnn_kernels::baseline::cusparse::{self, EdgeWeightsF32};
use halfgnn_kernels::common::{EdgeWeights, Reduce, ScalePlacement, VectorWidth};
use halfgnn_kernels::{edge_ops, halfgnn_sddmm, halfgnn_spmm, huang};
use halfgnn_sim::DeviceConfig;

fn dev() -> DeviceConfig {
    DeviceConfig::a100_like()
}

fn cfg_none() -> halfgnn_spmm::SpmmConfig {
    halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() }
}

#[test]
fn empty_graph_every_kernel() {
    let coo = Coo::from_edges(6, 6, &[]);
    let x = vec![Half::ONE; 6 * 8];
    let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, 8, None, &cfg_none());
    assert!(y.iter().all(|v| v.is_zero()));
    let (s, _) = halfgnn_sddmm::sddmm(&dev(), &coo, &x, &x, 8, VectorWidth::Half8);
    assert!(s.is_empty());
    let (m, _) = halfgnn_spmm::edge_reduce(&dev(), &coo, &[], Reduce::Max);
    assert!(m.iter().all(|v| v.is_zero()));
    let xf = vec![1.0f32; 6 * 8];
    let (yf, _) = cusparse::spmm_float(&dev(), &coo, EdgeWeightsF32::Ones, &xf, 8, None);
    assert!(yf.iter().all(|&v| v == 0.0));
}

#[test]
fn single_edge_graph() {
    let coo = Coo::from_edges(2, 2, &[(0, 1)]);
    let x = f32_slice_to_half(&[1.0, 2.0, 3.0, 4.0]);
    let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, 2, None, &cfg_none());
    assert_eq!(y[0].to_f32(), 3.0);
    assert_eq!(y[1].to_f32(), 4.0);
    assert!(y[2].is_zero() && y[3].is_zero());
}

#[test]
fn self_loop_only_graph() {
    let edges: Vec<(u32, u32)> = (0..5).map(|v| (v, v)).collect();
    let coo = Coo::from_edges(5, 5, &edges);
    let x = f32_slice_to_half(&(0..10).map(|i| i as f32).collect::<Vec<_>>());
    let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, 2, None, &cfg_none());
    for (a, b) in y.iter().zip(&x) {
        assert_eq!(a.to_f32(), b.to_f32(), "identity aggregation");
    }
}

#[test]
fn exactly_one_warp_tile_boundary() {
    // 64 edges = exactly one warp tile; 65 spills into the second warp.
    for nnz in [63usize, 64, 65, 255, 256, 257] {
        let edges: Vec<(u32, u32)> = (0..nnz as u32).map(|e| (e % 7, (e / 7) % 31)).collect();
        let coo = Coo::from_edges(31, 31, &edges);
        let f = 4;
        let x = f32_slice_to_half(&(0..31 * f).map(|i| (i % 5) as f32 * 0.25).collect::<Vec<_>>());
        let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, f, None, &cfg_none());
        let want = halfgnn_kernels::reference::spmm_f64(
            &coo,
            EdgeWeights::Ones,
            &halfgnn_kernels::reference::half_to_f64(&x),
            f,
            Reduce::Sum,
            None,
        );
        halfgnn_kernels::reference::assert_close_half(&y, &want, 0.02, 0.02, &format!("nnz={nnz}"));
    }
}

#[test]
fn feature_length_two_minimum() {
    // F = 2 is the smallest half2-legal width: one half2 lane per row.
    let coo =
        Csr::from_edges(10, 10, &[(0, 1), (1, 2), (5, 9)]).symmetrized_with_self_loops().to_coo();
    let x = f32_slice_to_half(&(0..20).map(|i| i as f32 * 0.1).collect::<Vec<_>>());
    let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, 2, None, &cfg_none());
    assert!(y.iter().all(|v| v.is_finite()));
    let (s, _) = halfgnn_sddmm::sddmm(&dev(), &coo, &x, &x, 2, VectorWidth::Half2);
    assert_eq!(s.len(), coo.nnz());
}

#[test]
fn large_feature_length_256() {
    let coo = Coo::from_edges(4, 4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
    let f = 256;
    let x =
        f32_slice_to_half(&(0..4 * f).map(|i| ((i % 11) as f32 - 5.0) * 0.1).collect::<Vec<_>>());
    let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, f, None, &cfg_none());
    // Row 0 = X1 exactly.
    for j in 0..f {
        assert_eq!(y[j].to_f32(), x[f + j].to_f32());
    }
    let (s, _) = halfgnn_sddmm::sddmm(&dev(), &coo, &x, &x, f, VectorWidth::Half8);
    assert_eq!(s.len(), 4);
    assert!(s.iter().all(|v| v.is_finite()));
}

#[test]
fn rectangular_spmm() {
    // 3 rows x 5 cols: kernels must respect non-square shapes.
    let coo = Coo::from_edges(3, 5, &[(0, 4), (1, 0), (2, 2), (2, 4)]);
    let x = f32_slice_to_half(&(0..5 * 2).map(|i| i as f32).collect::<Vec<_>>());
    let (y, _) = halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Ones, &x, 2, None, &cfg_none());
    assert_eq!(y.len(), 3 * 2);
    assert_eq!(y[0].to_f32(), 8.0); // X4[0]
    assert_eq!(y[4].to_f32(), 4.0 + 8.0); // X2[0] + X4[0]
}

#[test]
fn zero_weights_zero_output() {
    let coo = Coo::from_edges(3, 3, &[(0, 1), (1, 2), (2, 0)]);
    let w = vec![Half::ZERO; 3];
    let x = f32_slice_to_half(&[1.0; 6]);
    let (y, _) =
        halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Values(&w), &x, 2, None, &cfg_none());
    assert!(y.iter().all(|v| v.is_zero()));
}

#[test]
fn negative_and_subnormal_weights_survive() {
    let coo = Coo::from_edges(1, 2, &[(0, 0), (0, 1)]);
    let w = f32_slice_to_half(&[-1.0, 1e-7]); // second is subnormal in f16
    let x = f32_slice_to_half(&[2.0, 2.0, 4.0, 4.0]);
    let (y, _) =
        halfgnn_spmm::spmm(&dev(), &coo, EdgeWeights::Values(&w), &x, 2, None, &cfg_none());
    assert!((y[0].to_f32() + 2.0).abs() < 1e-2);
}

#[test]
fn edge_ops_on_isolated_vertices() {
    // Rows with no edges must not poison the row-gathered ops.
    let coo = Coo::from_edges(10, 10, &[(3, 4), (7, 2)]);
    let s_src = f32_slice_to_half(&(0..10).map(|i| i as f32 * 0.1).collect::<Vec<_>>());
    let s_dst = s_src.clone();
    let (e, _) = edge_ops::src_dst_add_leakyrelu(&dev(), &coo, &s_src, &s_dst, 0.2);
    assert_eq!(e.len(), 2);
    let (m, _) = halfgnn_spmm::edge_reduce(&dev(), &coo, &e, Reduce::Max);
    assert_eq!(m.len(), 10);
    assert!(m[0].is_zero(), "empty row max defined as 0");
}

#[test]
fn huang_on_degree_one_graph() {
    // Path graph: every group has exactly 1-3 neighbors, no multi-group rows.
    let edges: Vec<(u32, u32)> = (0..49u32).map(|v| (v, v + 1)).collect();
    let csr = Csr::from_edges(50, 50, &edges).symmetrized_with_self_loops();
    let x = f32_slice_to_half(&(0..50 * 4).map(|i| (i % 3) as f32).collect::<Vec<_>>());
    let (y, stats) = huang::spmm_half2(&dev(), &csr, EdgeWeights::Ones, &x, 4);
    assert!(y.iter().all(|v| v.is_finite()));
    assert_eq!(stats.totals.atomics_f16, 0);
    let want = halfgnn_kernels::reference::spmm_f64(
        &csr.to_coo(),
        EdgeWeights::Ones,
        &halfgnn_kernels::reference::half_to_f64(&x),
        4,
        Reduce::Sum,
        None,
    );
    halfgnn_kernels::reference::assert_close_half(&y, &want, 0.02, 0.02, "path graph");
}

#[test]
fn max_reduce_with_all_negative_values() {
    let coo = Coo::from_edges(2, 2, &[(0, 0), (0, 1)]);
    let w = f32_slice_to_half(&[-5.0, -3.0]);
    let (m, _) = halfgnn_spmm::edge_reduce(&dev(), &coo, &w, Reduce::Max);
    assert_eq!(m[0].to_f32(), -3.0, "max of negatives is not clamped to zero");
    assert!(m[1].is_zero(), "empty row is zero by definition");
}
