//! Executor-equivalence properties: for arbitrary random CSR graphs and
//! feature widths, the real-threads fast backend (`FastExecutor`) must
//! produce **bit-identical** Half outputs to the cost-model backend
//! (`SimExecutor`) for SpMMv, SpMMve, SDDMM, and the edge-softmax chain —
//! and the fast backend must be stable across 1, 2, and N worker threads.
//!
//! This is the determinism contract of the execution layer: functional
//! work is identical on both backends, per-CTA results commit in CTA
//! order, and the thread pool returns results in input order, so no
//! scheduling choice can leak into the numerics.
//!
//! CI runs this suite under both `HALFGNN_THREADS=1` and
//! `HALFGNN_THREADS=4`, which the auto-sized (`threads: 0`) runs pick up.

use halfgnn_graph::{Csr, VertexId};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::Half;
use halfgnn_kernels::common::{EdgeWeights, Reduce, ScalePlacement, VectorWidth};
use halfgnn_kernels::halfgnn_sddmm::SddmmConfig;
use halfgnn_kernels::{edge_ops, halfgnn_sddmm, halfgnn_spmm};
use halfgnn_sim::{DeviceConfig, ExecMode};
use proptest::prelude::*;

/// Arbitrary graph + padded feature length + half features (|x| ≤ 1).
fn arb_case() -> impl Strategy<Value = (Csr, usize, Vec<Half>, Vec<Half>)> {
    (3usize..40, 1usize..5)
        .prop_flat_map(|(n, fpow)| {
            let f = 8 << (fpow % 3); // 8, 16, 32
            let edge = (0..n as VertexId, 0..n as VertexId);
            (
                Just(n),
                Just(f),
                prop::collection::vec(edge, 0..120),
                prop::collection::vec(-1.0f32..1.0, n * f),
            )
        })
        .prop_map(|(n, f, edges, feats)| {
            let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
            let x = f32_slice_to_half(&feats);
            let w: Vec<Half> =
                (0..csr.nnz()).map(|i| Half::from_f32(((i % 17) as f32 - 8.0) / 8.0)).collect();
            (csr, f, x, w)
        })
}

fn bits(v: &[Half]) -> Vec<u16> {
    v.iter().map(|h| h.to_bits()).collect()
}

/// Sim device plus the fast variants the properties sweep: pinned 1 and 2
/// workers, and auto-sized (0 → `HALFGNN_THREADS` / available cores).
fn devices() -> (DeviceConfig, Vec<DeviceConfig>) {
    let sim = DeviceConfig::a100_like();
    let fasts = [1usize, 2, 0]
        .iter()
        .map(|&t| DeviceConfig::a100_like().with_exec(ExecMode::fast_with_threads(t)))
        .collect();
    (sim, fasts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmmv_and_spmmve_are_bit_identical_across_backends((csr, f, x, w) in arb_case()) {
        let (sim, fasts) = devices();
        let coo = csr.to_coo();
        let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        for weights in [EdgeWeights::Ones, EdgeWeights::Values(&w)] {
            let (want, sim_stats) = halfgnn_spmm::spmm(&sim, &coo, weights, &x, f, None, &cfg);
            prop_assert!(sim_stats.cycles > 0.0);
            for fast in &fasts {
                let (got, stats) = halfgnn_spmm::spmm(fast, &coo, weights, &x, f, None, &cfg);
                prop_assert_eq!(bits(&want), bits(&got), "exec={:?}", fast.exec);
                prop_assert_eq!(stats.cycles, 0.0);
            }
        }
    }

    #[test]
    fn sddmm_is_bit_identical_across_backends_at_every_width((csr, f, x, _w) in arb_case()) {
        let (sim, fasts) = devices();
        let coo = csr.to_coo();
        for width in [VectorWidth::Half2, VectorWidth::Half4, VectorWidth::Half8] {
            let (want, _) = halfgnn_sddmm::sddmm(&sim, &coo, &x, &x, f, width);
            for fast in &fasts {
                let (got, _) = halfgnn_sddmm::sddmm(fast, &coo, &x, &x, f, width);
                prop_assert_eq!(bits(&want), bits(&got), "{:?} exec={:?}", width, fast.exec);
            }
        }
    }

    #[test]
    fn edge_softmax_chain_is_bit_identical_across_backends((csr, _f, _x, w) in arb_case()) {
        let (sim, fasts) = devices();
        let coo = csr.to_coo();
        let run = |dev: &DeviceConfig| {
            let (m, _) = halfgnn_spmm::edge_reduce(dev, &coo, &w, Reduce::Max);
            let (num, _) = edge_ops::sub_row_exp(dev, &coo, &w, &m, true);
            let (z, _) = halfgnn_spmm::edge_reduce(dev, &coo, &num, Reduce::Sum);
            let (alpha, _) = edge_ops::div_row(dev, &coo, &num, &z);
            alpha
        };
        let want = run(&sim);
        for fast in &fasts {
            prop_assert_eq!(bits(&want), bits(&run(fast)), "exec={:?}", fast.exec);
        }
    }

    #[test]
    fn windowed_kernels_are_bit_identical_across_backends((csr, f, x, w) in arb_case()) {
        // The sharded path runs these per-shard windows on whatever
        // backend the device is configured with, so the determinism
        // contract must hold window-by-window, not just for full
        // launches: every window must agree bit-for-bit between Sim and
        // Fast at 1/2/auto workers, and (window ⊂ full) must be a bitwise
        // slice on both backends.
        let (sim, fasts) = devices();
        let coo = csr.to_coo();
        let n = coo.num_rows();
        let nnz = coo.nnz();
        let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let (full, _) = halfgnn_spmm::spmm(&sim, &coo, EdgeWeights::Values(&w), &x, f, None, &cfg);

        let row_cuts = [0, n / 3, 2 * n / 3, n];
        for win in row_cuts.windows(2) {
            let rw = (win[0], win[1]);
            let (want_spmm, _) = halfgnn_spmm::spmm_window(
                &sim, &coo, EdgeWeights::Values(&w), &x, f, None, &cfg, rw,
            );
            let (want_red, _) =
                halfgnn_spmm::edge_reduce_window(&sim, &coo, &w, Reduce::Max, rw);
            prop_assert_eq!(
                &bits(&want_spmm)[rw.0 * f..rw.1 * f],
                &bits(&full)[rw.0 * f..rw.1 * f],
                "window {:?} is not a slice of the full launch", rw
            );
            for fast in &fasts {
                let (got_spmm, _) = halfgnn_spmm::spmm_window(
                    fast, &coo, EdgeWeights::Values(&w), &x, f, None, &cfg, rw,
                );
                prop_assert_eq!(bits(&want_spmm), bits(&got_spmm), "spmm {:?} {:?}", rw, fast.exec);
                let (got_red, _) =
                    halfgnn_spmm::edge_reduce_window(fast, &coo, &w, Reduce::Max, rw);
                prop_assert_eq!(bits(&want_red), bits(&got_red), "reduce {:?} {:?}", rw, fast.exec);
            }
        }

        let sddmm_cfg = SddmmConfig::widest_for(f);
        let edge_cuts = [0, nnz / 3, 2 * nnz / 3, nnz];
        for win in edge_cuts.windows(2) {
            let ew = (win[0], win[1]);
            let (want, _) = halfgnn_sddmm::sddmm_window(&sim, &coo, &x, &x, f, &sddmm_cfg, ew);
            for fast in &fasts {
                let (got, _) = halfgnn_sddmm::sddmm_window(fast, &coo, &x, &x, f, &sddmm_cfg, ew);
                prop_assert_eq!(bits(&want), bits(&got), "sddmm {:?} {:?}", ew, fast.exec);
            }
        }
    }

    #[test]
    fn fast_backend_is_stable_across_thread_counts((csr, f, x, w) in arb_case()) {
        // Determinism of the fast path itself: 1, 2, and auto-N workers
        // must agree bit-for-bit (commit-in-CTA-order contract).
        let (_, fasts) = devices();
        let coo = csr.to_coo();
        let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let runs: Vec<Vec<u16>> = fasts
            .iter()
            .map(|d| {
                let (y, _) =
                    halfgnn_spmm::spmm(d, &coo, EdgeWeights::Values(&w), &x, f, None, &cfg);
                bits(&y)
            })
            .collect();
        for r in &runs[1..] {
            prop_assert_eq!(&runs[0], r);
        }
    }
}
