//! Property-based validation: every kernel agrees with the f64 reference
//! on arbitrary random graphs and features, and the design invariants
//! (non-atomic staging, discretized overflow safety) hold universally.

use halfgnn_graph::{Coo, Csr, VertexId};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::{overflow, Half};
use halfgnn_kernels::baseline::cusparse::{self, EdgeWeightsF32};
use halfgnn_kernels::baseline::dgl_sddmm;
use halfgnn_kernels::common::{EdgeWeights, Reduce, ScalePlacement, VectorWidth};
use halfgnn_kernels::reference;
use halfgnn_kernels::{edge_ops, fused, halfgnn_sddmm, halfgnn_spmm, huang};
use halfgnn_sim::DeviceConfig;
use proptest::prelude::*;

/// Arbitrary graph + padded feature length + half features (|x| ≤ 1).
fn arb_case() -> impl Strategy<Value = (Csr, usize, Vec<Half>, Vec<Half>)> {
    (3usize..40, 1usize..5)
        .prop_flat_map(|(n, fpow)| {
            let f = 8 << (fpow % 3); // 8, 16, 32
            let edge = (0..n as VertexId, 0..n as VertexId);
            (
                Just(n),
                Just(f),
                prop::collection::vec(edge, 0..120),
                prop::collection::vec(-1.0f32..1.0, n * f),
            )
        })
        .prop_map(|(n, f, edges, feats)| {
            let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
            let x = f32_slice_to_half(&feats);
            let w: Vec<Half> =
                (0..csr.nnz()).map(|i| Half::from_f32(((i % 17) as f32 - 8.0) / 8.0)).collect();
            (csr, f, x, w)
        })
}

/// Arbitrary attention case: unsymmetrized graph (so empty rows occur
/// naturally), even feature width, raw attention scores. `all_negative`
/// forces every score below zero — the case where a zero-identity bug in
/// the fused running-max/softmax would surface immediately.
fn arb_attn_case() -> impl Strategy<Value = (Coo, usize, Vec<Half>, Vec<Half>, Vec<Half>)> {
    (3usize..32, 0usize..3)
        .prop_flat_map(|(n, fpow)| {
            let f = 2 << fpow; // 2, 4, 8
            let edge = (0..n as VertexId, 0..n as VertexId);
            (
                Just(n),
                Just(f),
                prop::collection::vec(edge, 0..100),
                prop::collection::vec(-3.0f32..3.0, n),
                prop::collection::vec(-3.0f32..3.0, n),
                prop::collection::vec(-1.0f32..1.0, n * f),
                0usize..2, // vendored proptest has no bool strategy
            )
        })
        .prop_map(|(n, f, edges, sr, sc, z, neg)| {
            let all_negative = neg == 1;
            let coo = Csr::from_edges(n, n, &edges).to_coo();
            let scores = |v: Vec<f32>| -> Vec<Half> {
                let v: Vec<f32> =
                    v.into_iter().map(|s| if all_negative { -s.abs() - 0.5 } else { s }).collect();
                f32_slice_to_half(&v)
            };
            (coo, f, scores(sr), scores(sc), f32_slice_to_half(&z))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_attention_matches_the_unfused_chain(
        (coo, f, s_row, s_col, z) in arb_attn_case()
    ) {
        // The fused SDDMM → edge-softmax → SpMM pass is a pure
        // cost/traffic optimisation: for ANY graph (empty rows included)
        // and ANY scores (all-negative included) it must land inside the
        // `reference::close` band of the five-kernel chain, with zero
        // overflow-provenance events from its internal exp/div path.
        let dev = DeviceConfig::a100_like();
        let slope = 0.2;
        let ((fwd, _), fsum) = overflow::isolated(|| {
            fused::fused_attn_forward(&dev, &coo, &s_row, &s_col, slope, &z, f)
        });
        prop_assert!(fsum.is_clean(), "{} forward overflow events", fsum.nonfinite());

        let (e, _) = edge_ops::src_dst_add_leakyrelu(&dev, &coo, &s_row, &s_col, slope);
        let (m, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &e, Reduce::Max);
        let (num, _) = edge_ops::sub_row_exp(&dev, &coo, &e, &m, true);
        let (zs, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &num, Reduce::Sum);
        let (alpha, _) = edge_ops::div_row(&dev, &coo, &num, &zs);
        let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let (y, _) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Values(&alpha), &z, f, None, &cfg);

        // The raw-score path is arithmetically identical: bit equality.
        for (i, (a, b)) in fwd.e.iter().zip(&e).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "e[{}]", i);
        }
        for (i, (a, b)) in fwd.alpha.iter().zip(&alpha).enumerate() {
            prop_assert!(
                reference::close(a.to_f64(), b.to_f64(), 2e-2, 2e-2),
                "alpha[{}]: fused {} vs unfused {}", i, a, b
            );
        }
        for (i, (a, b)) in fwd.out.iter().zip(&y).enumerate() {
            prop_assert!(
                reference::close(a.to_f64(), b.to_f64(), 3e-2, 3e-2),
                "out[{}]: fused {} vs unfused {}", i, a, b
            );
        }

        // Backward: fused softmax-grad vs the four-kernel chain.
        let dalpha: Vec<Half> =
            (0..coo.nnz()).map(|i| Half::from_f32(((i % 17) as f32 - 8.0) / 8.0)).collect();
        let ((de_f, _), bsum) = overflow::isolated(|| {
            fused::fused_softmax_grad(&dev, &coo, &fwd.alpha, &dalpha, &fwd.e, slope)
        });
        prop_assert!(bsum.is_clean(), "{} backward overflow events", bsum.nonfinite());
        let (prod, _) = edge_ops::mul(&dev, &coo, &alpha, &dalpha);
        let (t, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &prod, Reduce::Sum);
        let (de_soft, _) = edge_ops::softmax_grad(&dev, &coo, &alpha, &dalpha, &t);
        let (de_u, _) = edge_ops::leakyrelu_grad(&dev, &coo, &e, &de_soft, slope);
        for (i, (a, b)) in de_f.iter().zip(&de_u).enumerate() {
            prop_assert!(
                reference::close(a.to_f64(), b.to_f64(), 2e-2, 2e-2),
                "de[{}]: fused {} vs unfused {}", i, a, b
            );
        }
    }

    #[test]
    fn halfgnn_spmm_matches_reference((csr, f, x, w) in arb_case()) {
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let cfg = halfgnn_spmm::SpmmConfig {
            scaling: ScalePlacement::None,
            ..Default::default()
        };
        let (y, stats) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Values(&w), &x, f, None, &cfg);
        let want = reference::spmm_f64(
            &coo, EdgeWeights::Values(&w), &reference::half_to_f64(&x), f, Reduce::Sum, None,
        );
        for (i, (g, want)) in y.iter().zip(&want).enumerate() {
            let err = (g.to_f64() - want).abs();
            prop_assert!(err <= 0.05 + 0.05 * want.abs(), "[{i}] {g} vs {want}");
        }
        prop_assert_eq!(stats.totals.atomics_f16 + stats.totals.atomics_f32, 0);
    }

    #[test]
    fn discretized_never_overflows_with_mean_scaling((csr, f, x, _w) in arb_case()) {
        // Universal invariant: with mean scaling and |x| ≤ 1, discretized
        // SpMM output is a convex combination — finite and bounded by 1.
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let scale = halfgnn_kernels::common::row_scales_mean(&csr.degrees());
        let (y, _) = halfgnn_spmm::spmm(
            &dev, &coo, EdgeWeights::Ones, &x, f, Some(&scale),
            &halfgnn_spmm::SpmmConfig::default(),
        );
        for v in &y {
            prop_assert!(v.is_finite());
            prop_assert!(v.to_f32().abs() <= 1.05, "mean output must stay bounded: {v}");
        }
    }

    #[test]
    fn sddmm_all_widths_match_reference((csr, f, x, _w) in arb_case()) {
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let want = reference::sddmm_f64(
            &coo, &reference::half_to_f64(&x), &reference::half_to_f64(&x), f,
        );
        for width in [VectorWidth::Half2, VectorWidth::Half4, VectorWidth::Half8] {
            let (got, _) = halfgnn_sddmm::sddmm(&dev, &coo, &x, &x, f, width);
            for (i, (g, want)) in got.iter().zip(&want).enumerate() {
                let err = (g.to_f64() - want).abs();
                prop_assert!(err <= 0.05 + 0.05 * want.abs(), "{width:?}[{i}] {g} vs {want}");
            }
        }
    }

    #[test]
    fn cusparse_half_and_float_agree_in_range((csr, f, x, w) in arb_case()) {
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let xf: Vec<f32> = x.iter().map(|h| h.to_f32()).collect();
        let wf: Vec<f32> = w.iter().map(|h| h.to_f32()).collect();
        let (yh, _) = cusparse::spmm_half(&dev, &coo, EdgeWeights::Values(&w), &x, f, None);
        let (yf, _) =
            cusparse::spmm_float(&dev, &coo, EdgeWeightsF32::Values(&wf), &xf, f, None);
        for (a, b) in yh.iter().zip(&yf) {
            prop_assert!((a.to_f32() - b).abs() <= 0.05 + 0.05 * b.abs(), "{a} vs {b}");
        }
    }

    #[test]
    fn huang_variants_agree((csr, f, x, _w) in arb_case()) {
        let dev = DeviceConfig::a100_like();
        let xf: Vec<f32> = x.iter().map(|h| h.to_f32()).collect();
        let (yf, sf) = huang::spmm_float(&dev, &csr, EdgeWeightsF32::Ones, &xf, f);
        let (yh, sh) = huang::spmm_half2(&dev, &csr, EdgeWeights::Ones, &x, f);
        for (a, b) in yh.iter().zip(&yf) {
            prop_assert!((a.to_f32() - b).abs() <= 0.08 + 0.05 * b.abs(), "{a} vs {b}");
        }
        // The half2 adaptation never uses atomics; the float original may.
        prop_assert_eq!(sh.totals.atomics_f16, 0);
        prop_assert_eq!(sh.totals.atomics_f32, 0);
        let _ = sf;
    }

    #[test]
    fn dgl_sddmm_agrees_with_halfgnn_sddmm((csr, f, x, _w) in arb_case()) {
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let (a, _) = dgl_sddmm::sddmm_half(&dev, &coo, &x, &x, f);
        let (b, _) = halfgnn_sddmm::sddmm(&dev, &coo, &x, &x, f, VectorWidth::Half8);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!(
                (u.to_f32() - v.to_f32()).abs() <= 0.05 + 0.05 * u.to_f32().abs(),
                "{u} vs {v}"
            );
        }
    }

    #[test]
    fn edge_reduce_sum_equals_degree_on_ones(n in 3usize..60, m in 0usize..150) {
        let dev = DeviceConfig::a100_like();
        let edges = halfgnn_graph::gen::erdos_renyi(n, m.max(1), 7);
        let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
        let coo = csr.to_coo();
        let ones = vec![Half::ONE; coo.nnz()];
        let (sums, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &ones, Reduce::Sum);
        for (v, s) in sums.iter().enumerate() {
            prop_assert_eq!(s.to_f32(), csr.degree(v as u32) as f32, "vertex {}", v);
        }
    }

    #[test]
    fn staging_protocol_correct_under_any_tiling(
        (csr, f, x, w) in arb_case(),
        edges_per_warp in 1usize..96,
        warps_per_cta in 1usize..6,
    ) {
        // The §5.2.3 write protocol must stay correct (and assign-disjoint,
        // checked by a debug_assert inside spmm) for ANY discretization
        // geometry, not just the default 64x4.
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let cfg = halfgnn_spmm::SpmmConfig {
            scaling: ScalePlacement::None,
            tiling: halfgnn_kernels::common::Tiling { edges_per_warp, warps_per_cta },
            ..Default::default()
        };
        let (y, stats) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Values(&w), &x, f, None, &cfg);
        let want = reference::spmm_f64(
            &coo, EdgeWeights::Values(&w), &reference::half_to_f64(&x), f, Reduce::Sum, None,
        );
        for (i, (g, want)) in y.iter().zip(&want).enumerate() {
            let err = (g.to_f64() - want).abs();
            prop_assert!(
                err <= 0.08 + 0.05 * want.abs(),
                "tiling {edges_per_warp}x{warps_per_cta} [{i}]: {g} vs {want}"
            );
        }
        prop_assert_eq!(stats.totals.atomics_f16, 0);
    }

    #[test]
    fn staged_and_atomic_write_strategies_compute_the_same_values(
        (csr, f, x, w) in arb_case(),
        edges_per_warp in 1usize..16,
    ) {
        // §5.2.3: the staging-buffer protocol is a pure performance
        // optimisation over prior-work atomics — for ANY graph, feature
        // width, and warp geometry both strategies must land on the same
        // half-precision values (small tilings force boundary rows, the
        // only place the strategies differ).
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let base = halfgnn_spmm::SpmmConfig {
            scaling: ScalePlacement::None,
            tiling: halfgnn_kernels::common::Tiling {
                edges_per_warp,
                ..Default::default()
            },
            ..Default::default()
        };
        let atomic = halfgnn_spmm::SpmmConfig {
            writes: halfgnn_kernels::common::WriteStrategy::Atomic,
            ..base
        };
        let (ys, ss) =
            halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Values(&w), &x, f, None, &base);
        let (ya, _) =
            halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Values(&w), &x, f, None, &atomic);
        prop_assert_eq!(ss.totals.atomics_f16 + ss.totals.atomics_f32, 0);
        for (i, (s, a)) in ys.iter().zip(&ya).enumerate() {
            prop_assert!(
                reference::close(s.to_f64(), a.to_f64(), 0.02, 0.02),
                "tiling {edges_per_warp} [{i}]: staged {s} vs atomic {a}"
            );
        }
    }

    #[test]
    fn edge_reduce_max_handles_all_negative_values_and_empty_rows(
        n in 3usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
    ) {
        // Max-reduce must not lean on a zero identity: with every edge
        // value negative, a `max(0, ·)` bug would surface immediately.
        // The graph is NOT symmetrized, so empty rows (defined as 0,
        // matching the reference) occur naturally.
        let dev = DeviceConfig::a100_like();
        let edges: Vec<(VertexId, VertexId)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as VertexId, v % n as VertexId))
            .collect();
        let coo = Csr::from_edges(n, n, &edges).to_coo();
        let w: Vec<Half> = (0..coo.nnz())
            .map(|i| Half::from_f32(-(((i % 23) + 1) as f32) / 4.0))
            .collect();
        let (got, _) = halfgnn_spmm::edge_reduce(&dev, &coo, &w, Reduce::Max);
        let wf: Vec<f64> = w.iter().map(|h| h.to_f64()).collect();
        let want = reference::edge_reduce_f64(&coo, &wf, Reduce::Max);
        for (r, (g, want)) in got.iter().zip(&want).enumerate() {
            // Max selects an exact input (or the empty-row zero): the
            // kernel must match the f64 reference bit for bit.
            prop_assert_eq!(g.to_f64(), *want, "row {}: {} vs {}", r, g, want);
        }
    }

    #[test]
    fn spmm_is_linear_in_x((csr, f, x, _w) in arb_case()) {
        // spmm(2x) == 2 * spmm(x) exactly in half (multiplying by 2 is
        // exact in binary floating point).
        let dev = DeviceConfig::a100_like();
        let coo = csr.to_coo();
        let cfg = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let x2: Vec<Half> = x.iter().map(|h| Half::from_f32(h.to_f32() * 2.0)).collect();
        let (y1, _) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Ones, &x, f, None, &cfg);
        let (y2, _) = halfgnn_spmm::spmm(&dev, &coo, EdgeWeights::Ones, &x2, f, None, &cfg);
        for (a, b) in y1.iter().zip(&y2) {
            if a.is_finite() && b.is_finite() {
                prop_assert!((a.to_f32() * 2.0 - b.to_f32()).abs() <= 1e-2 + 0.01 * b.to_f32().abs());
            }
        }
    }
}
