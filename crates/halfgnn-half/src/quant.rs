//! INT8 block quantization with deterministic stochastic rounding — the
//! precision rung below binary16 (ROADMAP item 2, after Tango).
//!
//! Values are quantized in `BLOCK`-sized groups that share one
//! power-of-two scale `2^e`, mirroring the discretized per-bucket
//! exponents of the f16 gradient all-reduce: the exponent is chosen as
//! the smallest `e` with `max|v| ≤ 127·2^e`, so every quantized code
//! fits `[-127, 127]` and dequantization (`q · 2^e`) is exact in f32.
//! The only lossy step is the rounding of `v · 2^-e` to an integer.
//!
//! That rounding is **stochastic**: round up with probability equal to
//! the fractional part. Round-to-nearest at INT8 granularity biases GNN
//! aggregations (many small same-sign terms all truncate the same way);
//! stochastic rounding is unbiased in expectation, which is what lets
//! INT8 gradients train at all. The randomness is **counter-based**,
//! keyed exactly like the neighbor sampler's RNG: the uniform draw for
//! one element is a pure function of `(seed, site, index)` through a
//! splitmix64 chain, never of how many draws happened before it — so
//! quantization is bitwise identical across worker-thread counts,
//! shard counts, and replay.
//!
//! Saturation provenance: a clamp to ±127 (stale/explicit scale) or a
//! non-finite input is the INT8 analogue of an f16 overflow. The
//! [`begin`]/[`take`]/[`isolated`] recorder below mirrors
//! [`crate::overflow`] so the tuner can gate quantized kernel plans on a
//! saturation-clean window the same way it gates f16 plans on an
//! overflow-clean one. Unlike the overflow hook it is always compiled
//! (no feature gate): the inactive cost is one `Cell` read per
//! quantized element, and there is no pre-existing hot path to protect.

use std::cell::{Cell, RefCell};
use std::fmt;

/// Elements sharing one power-of-two scale — matches the f16 all-reduce
/// bucket so wire formats line up block-for-block.
pub const BLOCK: usize = 64;

/// Largest quantized magnitude. The symmetric range `[-127, 127]` keeps
/// negation exact and leaves `-128` unused.
pub const QMAX: i32 = 127;

/// splitmix64, identical to the sampler's finalizer: the counter-based
/// stream that makes every draw a pure function of its key.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The uniform draw in `[0, 1)` for element `index` of the stream keyed
/// `(seed, site)`. 24 mantissa-exact bits; the leading constant
/// domain-separates quantization from the sampler, which chains the same
/// words through a different prefix.
pub fn sr_uniform(seed: u64, site: u64, index: u64) -> f32 {
    let mut s = splitmix64(seed ^ 0x2545_f491_4f6c_dd1d);
    s = splitmix64(s ^ site);
    s = splitmix64(s ^ index);
    ((s >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
}

/// Stable site key for a quantization call site (FNV-1a over the label),
/// the `site` word of [`sr_uniform`]'s key.
pub fn site_key(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The block's shared scale exponent: the smallest `e` with
/// `max_abs ≤ 127 · 2^e` (0 for an all-zero or non-finite block). With
/// this choice `|v · 2^-e| ≤ 127` for every in-block value, so clamping
/// can only fire on a stale or explicit scale.
pub fn block_exponent(max_abs: f32) -> i32 {
    if max_abs == 0.0 || !max_abs.is_finite() {
        return 0;
    }
    let m = max_abs as f64;
    let mut e = (m / QMAX as f64).log2().ceil() as i32;
    // log2/ceil rounding guards: enforce the bound, then minimality.
    while (QMAX as f64) * (2.0f64).powi(e) < m {
        e += 1;
    }
    while (QMAX as f64) * (2.0f64).powi(e - 1) >= m {
        e -= 1;
    }
    e
}

/// Stochastically round `v · 2^-e` to an INT8 code, drawing the round-up
/// coin from the `(seed, site, index)` stream. Clamps to `±QMAX` and
/// records saturation provenance when the scale cannot represent `v`.
pub fn quantize_sr(v: f32, e: i32, seed: u64, site: u64, index: u64) -> i8 {
    observe();
    if !v.is_finite() {
        record_event(site, index, v, true);
        return if v.is_nan() {
            0
        } else if v.is_sign_negative() {
            -QMAX as i8
        } else {
            QMAX as i8
        };
    }
    let scaled = v as f64 * (2.0f64).powi(-e);
    let floor = scaled.floor();
    let u = sr_uniform(seed, site, index) as f64;
    let q = floor + if u < scaled - floor { 1.0 } else { 0.0 };
    if q > QMAX as f64 {
        record_event(site, index, v, false);
        QMAX as i8
    } else if q < -(QMAX as f64) {
        record_event(site, index, v, false);
        -QMAX as i8
    } else {
        q as i8
    }
}

/// Exact dequantization: `q · 2^e` is a power-of-two scale of an
/// integer, representable exactly in f32 for every exponent the block
/// chooser emits.
pub fn dequantize(q: i8, e: i32) -> f32 {
    (q as f64 * (2.0f64).powi(e)) as f32
}

/// A slice quantized in [`BLOCK`]-element groups: 1-byte codes plus one
/// scale exponent per block. The exponents are scale metadata, exchanged
/// once per block alongside the payload exactly like the f16 all-reduce's
/// discretized bucket exponents — the ledger charges the 1 byte/element
/// payload, the dominant term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantizedBlocks {
    /// INT8 codes, one per input element.
    pub q: Vec<i8>,
    /// Per-block scale exponents (`len = ceil(q.len() / BLOCK)`).
    pub exps: Vec<i16>,
}

impl QuantizedBlocks {
    /// Dequantize every code back to f32.
    pub fn dequantize(&self) -> Vec<f32> {
        self.q
            .iter()
            .enumerate()
            .map(|(i, &q)| dequantize(q, self.exps[i / BLOCK] as i32))
            .collect()
    }
}

/// Quantize `vals` in [`BLOCK`]-element groups with per-block exponents.
/// Element `i` draws its rounding coin at stream index `base_index + i`,
/// so callers quantizing disjoint regions of one logical tensor get the
/// same codes whatever the work division.
pub fn quantize_blocks(vals: &[f32], seed: u64, site: u64, base_index: u64) -> QuantizedBlocks {
    let mut q = Vec::with_capacity(vals.len());
    let mut exps = Vec::with_capacity(vals.len().div_ceil(BLOCK));
    for (bi, block) in vals.chunks(BLOCK).enumerate() {
        let max_abs = block.iter().fold(0f32, |m, v| m.max(v.abs()));
        let e = block_exponent(max_abs) + exponent_bias();
        exps.push(e as i16);
        for (j, &v) in block.iter().enumerate() {
            q.push(quantize_sr(v, e, seed, site, base_index + (bi * BLOCK + j) as u64));
        }
    }
    QuantizedBlocks { q, exps }
}

/// One saturation event: the INT8 analogue of an overflow event.
#[derive(Clone, Debug)]
pub struct SatEvent {
    /// The [`site_key`] of the quantization call site.
    pub site: u64,
    /// The element's stream index within that site.
    pub index: u64,
    /// The input value that could not be represented.
    pub input: f32,
    /// True when the input was already non-finite (propagation), false
    /// for a finite value clamped by a stale/explicit scale.
    pub nonfinite_input: bool,
}

impl fmt::Display for SatEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "INT8 {} at site {:#018x} (element #{}, input {:e})",
            if self.nonfinite_input { "non-finite input" } else { "saturation" },
            self.site,
            self.index,
            self.input
        )
    }
}

/// Counters for one saturation-tracking window ([`begin`] … [`take`]).
#[derive(Clone, Debug, Default)]
pub struct SatSummary {
    /// Total elements quantized in the window.
    pub quantized: u64,
    /// Finite inputs clamped to ±127 by a scale too small for them.
    pub saturated: u64,
    /// Non-finite inputs (INF/NaN) pinned to ±127/0.
    pub nonfinite_inputs: u64,
    /// The first flagged event — the genesis of any downstream damage.
    pub first: Option<SatEvent>,
}

impl SatSummary {
    /// Total flagged events of either kind.
    pub fn flagged(&self) -> u64 {
        self.saturated + self.nonfinite_inputs
    }

    /// True when every quantization in the window was representable.
    pub fn is_clean(&self) -> bool {
        self.first.is_none()
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static WINDOW: RefCell<SatSummary> = RefCell::new(SatSummary::default());
    static EXP_BIAS: Cell<i32> = const { Cell::new(0) };
}

/// Stress knob: bias every exponent [`quantize_blocks`] chooses by this
/// amount on the current thread. A negative bias forces scales too small
/// for their blocks, making saturation reproducible on otherwise
/// well-conditioned data — the tuner tests use it to manufacture a
/// saturation-dirty candidate plan. Zero (the default) is a no-op.
pub fn set_exponent_bias(bias: i32) {
    EXP_BIAS.with(|b| b.set(bias));
}

/// The current thread's exponent bias (see [`set_exponent_bias`]).
pub fn exponent_bias() -> i32 {
    EXP_BIAS.with(|b| b.get())
}

/// Start a saturation-tracking window on this thread.
pub fn begin() {
    WINDOW.with(|w| *w.borrow_mut() = SatSummary::default());
    ACTIVE.with(|a| a.set(true));
}

/// Stop tracking and return the window's summary.
pub fn take() -> SatSummary {
    ACTIVE.with(|a| a.set(false));
    WINDOW.with(|w| std::mem::take(&mut *w.borrow_mut()))
}

/// True while a tracking window is open on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Run `f` in its own nested window, suspending (and afterwards
/// restoring, untouched) any outer window — the tuner's tool for vetting
/// quantized candidate plans mid-epoch without polluting the epoch's
/// saturation summary.
pub fn isolated<T>(f: impl FnOnce() -> T) -> (T, SatSummary) {
    let outer_active = ACTIVE.with(|a| a.get());
    let outer_window = WINDOW.with(|w| std::mem::take(&mut *w.borrow_mut()));
    begin();
    let out = f();
    let summary = take();
    WINDOW.with(|w| *w.borrow_mut() = outer_window);
    ACTIVE.with(|a| a.set(outer_active));
    (out, summary)
}

fn observe() {
    if !ACTIVE.with(|a| a.get()) {
        return;
    }
    WINDOW.with(|w| w.borrow_mut().quantized += 1);
}

fn record_event(site: u64, index: u64, input: f32, nonfinite: bool) {
    if !ACTIVE.with(|a| a.get()) {
        return;
    }
    WINDOW.with(|w| {
        let mut s = w.borrow_mut();
        if nonfinite {
            s.nonfinite_inputs += 1;
        } else {
            s.saturated += 1;
        }
        if s.first.is_none() {
            s.first = Some(SatEvent { site, index, input, nonfinite_input: nonfinite });
        }
    });
}

/// CLT confidence half-width for the mean error of `n` stochastic
/// roundings at step `2^e = step`: per-element error is `(1-p)·step`
/// with probability `p` and `-p·step` otherwise (mean 0, variance
/// `p(1-p)·step² ≤ step²/4`), so the mean of `n` draws is within
/// `z · step / (2·√n)` of zero at `z` sigmas. The statistical test
/// harness for this and future lossy dtypes asserts against this band.
pub fn sr_mean_error_band(step: f64, n: usize, z: f64) -> f64 {
    z * step * 0.5 / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_exponent_is_minimal_and_sufficient() {
        for max in [1e-6f32, 0.5, 1.0, 127.0, 128.0, 65504.0, 1e30] {
            let e = block_exponent(max);
            assert!(QMAX as f64 * (2.0f64).powi(e) >= max as f64, "max={max} e={e}");
            assert!(QMAX as f64 * (2.0f64).powi(e - 1) < max as f64, "max={max} e={e} not minimal");
        }
        assert_eq!(block_exponent(0.0), 0);
        assert_eq!(block_exponent(f32::INFINITY), 0);
        assert_eq!(block_exponent(f32::NAN), 0);
    }

    #[test]
    fn round_trip_error_is_below_one_step() {
        let vals: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.37).collect();
        let out = quantize_blocks(&vals, 7, site_key("test"), 0);
        for (i, (&v, d)) in vals.iter().zip(out.dequantize()).enumerate() {
            let step = (2.0f64).powi(out.exps[i / BLOCK] as i32);
            assert!(
                (d as f64 - v as f64).abs() < step,
                "[{i}] {v} -> {d} off by more than step {step}"
            );
        }
    }

    #[test]
    fn stream_is_a_pure_function_of_its_key() {
        let a = sr_uniform(1, 2, 3);
        let b = sr_uniform(1, 2, 3);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(sr_uniform(1, 2, 4).to_bits(), a.to_bits());
        assert_ne!(sr_uniform(1, 3, 3).to_bits(), a.to_bits());
        assert_ne!(sr_uniform(2, 2, 3).to_bits(), a.to_bits());
        assert!((0.0..1.0).contains(&a));
    }

    #[test]
    fn in_range_quantization_never_saturates() {
        begin();
        let vals: Vec<f32> = (0..1000).map(|i| ((i * 37) % 199) as f32 - 99.0).collect();
        let _ = quantize_blocks(&vals, 0, 0, 0);
        let s = take();
        assert_eq!(s.quantized, 1000);
        assert!(s.is_clean(), "{:?}", s.first);
    }

    #[test]
    fn stale_scale_saturates_and_is_recorded() {
        begin();
        // Explicit exponent 0: anything beyond ±127 clamps.
        let q = quantize_sr(300.0, 0, 0, 42, 9);
        let s = take();
        assert_eq!(q, QMAX as i8);
        assert_eq!(s.saturated, 1);
        let first = s.first.expect("event recorded");
        assert_eq!(first.site, 42);
        assert_eq!(first.index, 9);
        assert!(!first.nonfinite_input);
        assert!(!first.to_string().is_empty());
    }

    #[test]
    fn nonfinite_inputs_are_pinned_and_flagged() {
        begin();
        assert_eq!(quantize_sr(f32::INFINITY, 0, 0, 0, 0), QMAX as i8);
        assert_eq!(quantize_sr(f32::NEG_INFINITY, 0, 0, 0, 1), -QMAX as i8);
        assert_eq!(quantize_sr(f32::NAN, 0, 0, 0, 2), 0);
        let s = take();
        assert_eq!(s.nonfinite_inputs, 3);
        assert_eq!(s.saturated, 0);
        assert!(s.first.unwrap().nonfinite_input);
    }

    #[test]
    fn isolated_window_shields_the_outer_one() {
        begin();
        let _ = quantize_sr(1.0, 0, 0, 0, 0);
        let (_, inner) = isolated(|| quantize_sr(1e9, 0, 0, 0, 1));
        let _ = quantize_sr(2.0, 0, 0, 0, 2);
        let outer = take();
        assert_eq!(inner.saturated, 1);
        assert_eq!(outer.quantized, 2);
        assert!(outer.is_clean(), "inner saturation leaked out");
        assert!(!is_active());
    }

    #[test]
    fn exponent_bias_forces_saturation_on_clean_data() {
        let vals: Vec<f32> = (0..BLOCK).map(|i| i as f32 / BLOCK as f32).collect();
        let ((), clean) = isolated(|| {
            let out = quantize_blocks(&vals, 0, 0, 0);
            assert_eq!(out.q.len(), vals.len());
        });
        assert!(clean.is_clean());
        set_exponent_bias(-4);
        let ((), dirty) = isolated(|| {
            let _ = quantize_blocks(&vals, 0, 0, 0);
        });
        set_exponent_bias(0);
        assert!(dirty.saturated > 0, "biased scale should clamp");
        assert_eq!(exponent_bias(), 0);
    }

    #[test]
    fn inactive_thread_records_nothing() {
        let _ = quantize_sr(1e9, 0, 0, 0, 0);
        begin();
        let s = take();
        assert_eq!(s.quantized, 0);
        assert!(s.is_clean());
    }
}
