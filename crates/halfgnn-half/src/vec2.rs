//! `Half2` — the native 32-bit vector of two binary16 lanes (Fig. 3c path).
//!
//! GPUs support `half2` natively for both data load and arithmetic: one
//! instruction operates on both lanes, doubling arithmetic throughput over
//! scalar half or float. HalfGNN's baseline design (§4) is built on this
//! type, together with *edge-feature mirroring* ([`Half2::mirror_lo`] /
//! [`Half2::mirror_hi`]), which duplicates a single edge feature across both
//! lanes so that one `half2` FMA multiplies one edge weight against two
//! vertex features.

use crate::f16::Half;
use crate::intrinsics::{hadd, hdiv, hfma, hmax, hmul, hsub};

/// Two binary16 lanes packed in 32 bits.
#[derive(Clone, Copy, Default, PartialEq, Debug)]
#[repr(C, align(4))]
pub struct Half2 {
    /// Low lane (first in memory).
    pub lo: Half,
    /// High lane (second in memory).
    pub hi: Half,
}

impl Half2 {
    /// Both lanes zero.
    pub const ZERO: Half2 = Half2 { lo: Half::ZERO, hi: Half::ZERO };

    /// Pack two halves.
    #[inline(always)]
    pub const fn new(lo: Half, hi: Half) -> Half2 {
        Half2 { lo, hi }
    }

    /// Broadcast one half to both lanes (CUDA `__half2half2`).
    #[inline(always)]
    pub const fn splat(v: Half) -> Half2 {
        Half2 { lo: v, hi: v }
    }

    /// Convert a pair of `f32`s, rounding each lane.
    pub fn from_f32s(lo: f32, hi: f32) -> Half2 {
        Half2 { lo: Half::from_f32(lo), hi: Half::from_f32(hi) }
    }

    /// Mirror the low lane across both lanes: `(a, b) -> (a, a)`.
    ///
    /// Edge-feature mirroring (§4.2): an edge-feature load brings two
    /// *different* edges' features `(w_e, w_e')` as one `half2`; the dot
    /// product needs `(w_e, w_e)` against that edge's two vertex features.
    #[inline(always)]
    pub const fn mirror_lo(self) -> Half2 {
        Half2 { lo: self.lo, hi: self.lo }
    }

    /// Mirror the high lane across both lanes: `(a, b) -> (b, b)`.
    #[inline(always)]
    pub const fn mirror_hi(self) -> Half2 {
        Half2 { lo: self.hi, hi: self.hi }
    }

    /// Lanewise add (CUDA `__hadd2`): one instruction, two results.
    #[inline(always)]
    pub fn add2(self, rhs: Half2) -> Half2 {
        Half2 { lo: hadd(self.lo, rhs.lo), hi: hadd(self.hi, rhs.hi) }
    }

    /// Lanewise subtract (CUDA `__hsub2`).
    #[inline(always)]
    pub fn sub2(self, rhs: Half2) -> Half2 {
        Half2 { lo: hsub(self.lo, rhs.lo), hi: hsub(self.hi, rhs.hi) }
    }

    /// Lanewise multiply (CUDA `__hmul2`).
    #[inline(always)]
    pub fn mul2(self, rhs: Half2) -> Half2 {
        Half2 { lo: hmul(self.lo, rhs.lo), hi: hmul(self.hi, rhs.hi) }
    }

    /// Lanewise divide (CUDA `__h2div`).
    #[inline(always)]
    pub fn div2(self, rhs: Half2) -> Half2 {
        Half2 { lo: hdiv(self.lo, rhs.lo), hi: hdiv(self.hi, rhs.hi) }
    }

    /// Lanewise fused multiply-add (CUDA `__hfma2`): `self * b + c`.
    #[inline(always)]
    pub fn fma2(self, b: Half2, c: Half2) -> Half2 {
        Half2 { lo: hfma(self.lo, b.lo, c.lo), hi: hfma(self.hi, b.hi, c.hi) }
    }

    /// Lanewise max (CUDA `__hmax2`).
    #[inline(always)]
    pub fn max2(self, rhs: Half2) -> Half2 {
        Half2 { lo: hmax(self.lo, rhs.lo), hi: hmax(self.hi, rhs.hi) }
    }

    /// Horizontal sum of the two lanes as one half add.
    #[inline(always)]
    pub fn hsum(self) -> Half {
        hadd(self.lo, self.hi)
    }

    /// Horizontal sum widened to `f32` (exact).
    #[inline(always)]
    pub fn hsum_f32(self) -> f32 {
        self.lo.to_f32() + self.hi.to_f32()
    }

    /// True if either lane is non-finite.
    pub fn has_non_finite(self) -> bool {
        !self.lo.is_finite() || !self.hi.is_finite()
    }

    /// Reinterpret as the raw 32-bit word the GPU would move.
    #[inline(always)]
    pub fn to_bits(self) -> u32 {
        (self.lo.to_bits() as u32) | ((self.hi.to_bits() as u32) << 16)
    }

    /// Rebuild from a raw 32-bit word.
    #[inline(always)]
    pub fn from_bits(bits: u32) -> Half2 {
        Half2 { lo: Half::from_bits(bits as u16), hi: Half::from_bits((bits >> 16) as u16) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f32) -> Half {
        Half::from_f32(v)
    }

    #[test]
    fn layout_is_32_bits() {
        assert_eq!(std::mem::size_of::<Half2>(), 4);
        assert_eq!(std::mem::align_of::<Half2>(), 4);
    }

    #[test]
    fn lanewise_ops_match_scalar() {
        let a = Half2::from_f32s(1.5, -2.0);
        let b = Half2::from_f32s(0.25, 4.0);
        assert_eq!(a.add2(b), Half2::from_f32s(1.75, 2.0));
        assert_eq!(a.mul2(b), Half2::from_f32s(0.375, -8.0));
        assert_eq!(a.sub2(b), Half2::from_f32s(1.25, -6.0));
        assert_eq!(a.fma2(b, Half2::splat(Half::ONE)), Half2::from_f32s(1.375, -7.0));
        assert_eq!(a.max2(b), Half2::from_f32s(1.5, 4.0));
    }

    #[test]
    fn mirroring() {
        let w = Half2::from_f32s(3.0, 7.0); // two different edges' features
        assert_eq!(w.mirror_lo(), Half2::from_f32s(3.0, 3.0));
        assert_eq!(w.mirror_hi(), Half2::from_f32s(7.0, 7.0));
    }

    #[test]
    fn mirrored_fma_computes_correct_dot_product() {
        // Edge weight w against vertex feature pair (x0, x1): the mirrored
        // half2 FMA must produce (w*x0, w*x1), not (w*x0, w'*x1).
        let packed = Half2::from_f32s(2.0, 5.0); // w = 2.0 for this edge
        let x = Half2::from_f32s(1.5, -3.0);
        let r = packed.mirror_lo().mul2(x);
        assert_eq!(r, Half2::from_f32s(3.0, -6.0));
    }

    #[test]
    fn horizontal_sum() {
        let v = Half2::from_f32s(1.25, 2.5);
        assert_eq!(v.hsum().to_f32(), 3.75);
        assert_eq!(v.hsum_f32(), 3.75);
    }

    #[test]
    fn bit_packing_round_trip() {
        let v = Half2::from_f32s(-0.125, 65504.0);
        assert_eq!(Half2::from_bits(v.to_bits()), v);
        assert_eq!(v.to_bits() & 0xFFFF, Half::from_f32(-0.125).to_bits() as u32);
    }

    #[test]
    fn overflow_per_lane() {
        let a = Half2::new(Half::MAX, h(1.0));
        let r = a.add2(Half2::new(Half::MAX, h(1.0)));
        assert!(r.lo.is_infinite());
        assert_eq!(r.hi.to_f32(), 2.0);
        assert!(r.has_non_finite());
    }
}
