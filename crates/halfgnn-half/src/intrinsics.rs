//! Scalar half-precision intrinsics — the Fig. 3b path.
//!
//! These mirror CUDA's `__hadd`, `__hmul`, `__hfma`, … : the operation is
//! performed *as if* natively in binary16 with a single rounding, and no
//! float-typed intermediate escapes. On real GPUs this path avoids the
//! h2f/f2h conversion instructions of the promotion path but achieves only
//! float-equal throughput; the simulator charges it accordingly.
//!
//! Correctness note: for `+`, `-`, `*` and FMA, computing in `f32` and
//! rounding once to binary16 *is* the correctly-rounded binary16 result
//! (11-bit significands: products take ≤22 bits, sums ≤ 24 bits with the
//! exponent range of f16, all exact in f32). Division and exp are correctly
//! rounded up to possible double rounding, which is pinned by tests.

use crate::f16::Half;

/// `a + b` rounded once to binary16 (CUDA `__hadd`).
#[inline(always)]
pub fn hadd(a: Half, b: Half) -> Half {
    Half::from_f32(a.to_f32() + b.to_f32())
}

/// `a - b` rounded once to binary16 (CUDA `__hsub`).
#[inline(always)]
pub fn hsub(a: Half, b: Half) -> Half {
    Half::from_f32(a.to_f32() - b.to_f32())
}

/// `a * b` rounded once to binary16 (CUDA `__hmul`).
#[inline(always)]
pub fn hmul(a: Half, b: Half) -> Half {
    Half::from_f32(a.to_f32() * b.to_f32())
}

/// `a / b` rounded to binary16 (CUDA `__hdiv`).
#[inline(always)]
pub fn hdiv(a: Half, b: Half) -> Half {
    Half::from_f32(a.to_f32() / b.to_f32())
}

/// Fused multiply-add `a * b + c` with a single final rounding
/// (CUDA `__hfma`). The f32 product of two halves is exact, so one f32 add
/// followed by one rounding matches true FMA semantics for binary16.
#[inline(always)]
pub fn hfma(a: Half, b: Half, c: Half) -> Half {
    Half::from_f32(a.to_f32() * b.to_f32() + c.to_f32())
}

/// Maximum, NaN-ignoring (CUDA `__hmax`).
#[inline(always)]
pub fn hmax(a: Half, b: Half) -> Half {
    a.max(b)
}

/// Minimum, NaN-ignoring (CUDA `__hmin`).
#[inline(always)]
pub fn hmin(a: Half, b: Half) -> Half {
    a.min(b)
}

/// Negation (sign-bit flip, exact).
#[inline(always)]
pub fn hneg(a: Half) -> Half {
    -a
}

/// Base-e exponential in half precision (CUDA `hexp`).
///
/// Input in `(-INF, 0]` provably yields output in `(0, 1]` — the shadow-API
/// contract the paper exploits for edge-softmax (§3.1.2).
#[inline(always)]
pub fn hexp(a: Half) -> Half {
    Half::from_f32(a.to_f32().exp())
}

/// Natural logarithm in half precision (CUDA `hlog`).
#[inline(always)]
pub fn hlog(a: Half) -> Half {
    Half::from_f32(a.to_f32().ln())
}

/// Square root in half precision (CUDA `hsqrt`).
#[inline(always)]
pub fn hsqrt(a: Half) -> Half {
    Half::from_f32(a.to_f32().sqrt())
}

/// Reciprocal in half precision (CUDA `hrcp`).
#[inline(always)]
pub fn hrcp(a: Half) -> Half {
    Half::from_f32(1.0 / a.to_f32())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f32) -> Half {
        Half::from_f32(v)
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(hadd(h(1.5), h(2.25)).to_f32(), 3.75);
        assert_eq!(hsub(h(1.0), h(0.5)).to_f32(), 0.5);
        assert_eq!(hmul(h(3.0), h(0.5)).to_f32(), 1.5);
        assert_eq!(hdiv(h(1.0), h(4.0)).to_f32(), 0.25);
    }

    #[test]
    fn fma_single_rounding() {
        // 2^-5 * 2^-6 + 1.0 = 1 + 2^-11: unfused would round the product
        // (exact) then the sum; both paths agree here, but the sum must tie
        // to even 1.0.
        let r = hfma(h(2f32.powi(-5)), h(2f32.powi(-6)), Half::ONE);
        assert_eq!(r, Half::ONE);
        assert_eq!(hfma(h(2.0), h(3.0), h(4.0)).to_f32(), 10.0);
    }

    #[test]
    fn intrinsics_overflow_to_inf() {
        assert!(hadd(Half::MAX, Half::MAX).is_infinite());
        assert!(hmul(h(300.0), h(300.0)).is_infinite());
        assert!(hfma(h(256.0), h(256.0), Half::ZERO).is_infinite());
    }

    #[test]
    fn exp_contract_non_positive_inputs() {
        // exp of a non-positive half never overflows: output in (0, 1].
        for bits in 0..=u16::MAX {
            let x = Half::from_bits(bits);
            if x.is_nan() || x.to_f32() > 0.0 {
                continue;
            }
            let e = hexp(x);
            assert!(e.is_finite(), "exp({x:?}) overflowed");
            assert!(e.to_f32() <= 1.0 && e.to_f32() >= 0.0);
        }
        // ... whereas positive inputs can overflow, which is AMP's fear.
        assert!(hexp(h(12.0)).is_infinite());
    }

    #[test]
    fn transcendentals() {
        assert_eq!(hexp(Half::ZERO), Half::ONE);
        assert_eq!(hlog(Half::ONE), Half::ZERO);
        assert_eq!(hsqrt(h(4.0)).to_f32(), 2.0);
        assert_eq!(hrcp(h(2.0)).to_f32(), 0.5);
        assert!(hlog(h(-1.0)).is_nan());
        assert!(hsqrt(h(-1.0)).is_nan());
    }

    #[test]
    fn min_max() {
        assert_eq!(hmax(h(2.0), h(3.0)).to_f32(), 3.0);
        assert_eq!(hmin(h(2.0), h(3.0)).to_f32(), 2.0);
        assert_eq!(hmax(Half::NEG_INFINITY, h(-5.0)).to_f32(), -5.0);
    }
}
