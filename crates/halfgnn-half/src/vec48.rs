//! `Half4` and `Half8` — the paper's proposed wider half vectors (§5.1.2).
//!
//! GPUs have no native arithmetic beyond `half2`, but they *do* have native
//! 64-bit (`float2`) and 128-bit (`float4`) vector loads. `Half4` packs four
//! halves in a `float2`-sized word and `Half8` packs eight in a
//! `float4`-sized word, so a warp issues 256 B or 512 B of data in a single
//! load instruction. Arithmetic on these types decomposes into `half2`
//! operations, exactly as the paper specifies ("half4 and half8 use half2
//! for arithmetic").

use crate::f16::Half;
use crate::vec2::Half2;

/// Four binary16 lanes packed in 64 bits (loaded like a `float2`).
#[derive(Clone, Copy, Default, PartialEq, Debug)]
#[repr(C, align(8))]
pub struct Half4 {
    /// Lanes 0–1.
    pub a: Half2,
    /// Lanes 2–3.
    pub b: Half2,
}

/// Eight binary16 lanes packed in 128 bits (loaded like a `float4`).
#[derive(Clone, Copy, Default, PartialEq, Debug)]
#[repr(C, align(16))]
pub struct Half8 {
    /// Lanes 0–3.
    pub lo: Half4,
    /// Lanes 4–7.
    pub hi: Half4,
}

impl Half4 {
    /// All lanes zero.
    pub const ZERO: Half4 = Half4 { a: Half2::ZERO, b: Half2::ZERO };

    /// Pack four halves.
    pub const fn new(x0: Half, x1: Half, x2: Half, x3: Half) -> Half4 {
        Half4 { a: Half2::new(x0, x1), b: Half2::new(x2, x3) }
    }

    /// Broadcast one half to all four lanes.
    pub const fn splat(v: Half) -> Half4 {
        Half4 { a: Half2::splat(v), b: Half2::splat(v) }
    }

    /// Gather the four lanes from a slice starting at `off` (must have 4
    /// elements available; this is the functional view of one thread's
    /// `float2`-width load).
    pub fn load(src: &[Half], off: usize) -> Half4 {
        Half4 { a: Half2::new(src[off], src[off + 1]), b: Half2::new(src[off + 2], src[off + 3]) }
    }

    /// Scatter all four lanes to a slice starting at `off`.
    pub fn store(self, dst: &mut [Half], off: usize) {
        dst[off] = self.a.lo;
        dst[off + 1] = self.a.hi;
        dst[off + 2] = self.b.lo;
        dst[off + 3] = self.b.hi;
    }

    /// Lanewise add: two `half2` instructions.
    #[inline(always)]
    pub fn add4(self, rhs: Half4) -> Half4 {
        Half4 { a: self.a.add2(rhs.a), b: self.b.add2(rhs.b) }
    }

    /// Lanewise multiply: two `half2` instructions.
    #[inline(always)]
    pub fn mul4(self, rhs: Half4) -> Half4 {
        Half4 { a: self.a.mul2(rhs.a), b: self.b.mul2(rhs.b) }
    }

    /// Lanewise FMA: two `half2` instructions.
    #[inline(always)]
    pub fn fma4(self, b: Half4, c: Half4) -> Half4 {
        Half4 { a: self.a.fma2(b.a, c.a), b: self.b.fma2(b.b, c.b) }
    }

    /// Horizontal sum widened to `f32` (exact partial dot-product reduce).
    #[inline(always)]
    pub fn hsum_f32(self) -> f32 {
        self.a.hsum_f32() + self.b.hsum_f32()
    }

    /// Pairwise horizontal reduce to one `half2` (lane0+lane2, lane1+lane3):
    /// the in-register reduction step SDDMM uses before shuffles.
    #[inline(always)]
    pub fn fold2(self) -> Half2 {
        self.a.add2(self.b)
    }

    /// Lane access by index (0..4).
    pub fn lane(self, i: usize) -> Half {
        match i {
            0 => self.a.lo,
            1 => self.a.hi,
            2 => self.b.lo,
            3 => self.b.hi,
            _ => panic!("Half4 lane index {i} out of range"),
        }
    }
}

impl Half8 {
    /// All lanes zero.
    pub const ZERO: Half8 = Half8 { lo: Half4::ZERO, hi: Half4::ZERO };

    /// Broadcast one half to all eight lanes.
    pub const fn splat(v: Half) -> Half8 {
        Half8 { lo: Half4::splat(v), hi: Half4::splat(v) }
    }

    /// Gather eight lanes from a slice starting at `off` (one thread's
    /// `float4`-width load).
    pub fn load(src: &[Half], off: usize) -> Half8 {
        Half8 { lo: Half4::load(src, off), hi: Half4::load(src, off + 4) }
    }

    /// Scatter all eight lanes to a slice starting at `off`.
    pub fn store(self, dst: &mut [Half], off: usize) {
        self.lo.store(dst, off);
        self.hi.store(dst, off + 4);
    }

    /// Lanewise add: four `half2` instructions.
    #[inline(always)]
    pub fn add8(self, rhs: Half8) -> Half8 {
        Half8 { lo: self.lo.add4(rhs.lo), hi: self.hi.add4(rhs.hi) }
    }

    /// Lanewise multiply: four `half2` instructions.
    #[inline(always)]
    pub fn mul8(self, rhs: Half8) -> Half8 {
        Half8 { lo: self.lo.mul4(rhs.lo), hi: self.hi.mul4(rhs.hi) }
    }

    /// Lanewise FMA: four `half2` instructions.
    #[inline(always)]
    pub fn fma8(self, b: Half8, c: Half8) -> Half8 {
        Half8 { lo: self.lo.fma4(b.lo, c.lo), hi: self.hi.fma4(b.hi, c.hi) }
    }

    /// Horizontal sum widened to `f32` (exact).
    #[inline(always)]
    pub fn hsum_f32(self) -> f32 {
        self.lo.hsum_f32() + self.hi.hsum_f32()
    }

    /// In-register tree reduce to one `half2`: three `half2` adds, leaving
    /// only log2(sub-warp) shuffle rounds to finish an SDDMM reduction.
    #[inline(always)]
    pub fn fold2(self) -> Half2 {
        self.lo.fold2().add2(self.hi.fold2())
    }

    /// Lane access by index (0..8).
    pub fn lane(self, i: usize) -> Half {
        if i < 4 {
            self.lo.lane(i)
        } else {
            self.hi.lane(i - 4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f32) -> Half {
        Half::from_f32(v)
    }

    #[test]
    fn sizes_match_float2_float4() {
        assert_eq!(std::mem::size_of::<Half4>(), 8); // float2-sized
        assert_eq!(std::mem::size_of::<Half8>(), 16); // float4-sized
        assert_eq!(std::mem::align_of::<Half4>(), 8);
        assert_eq!(std::mem::align_of::<Half8>(), 16);
    }

    #[test]
    fn load_store_round_trip() {
        let data: Vec<Half> = (0..16).map(|i| h(i as f32 * 0.5)).collect();
        let v4 = Half4::load(&data, 4);
        assert_eq!(v4.lane(0).to_f32(), 2.0);
        assert_eq!(v4.lane(3).to_f32(), 3.5);
        let v8 = Half8::load(&data, 8);
        assert_eq!(v8.lane(0).to_f32(), 4.0);
        assert_eq!(v8.lane(7).to_f32(), 7.5);

        let mut out = vec![Half::ZERO; 16];
        v4.store(&mut out, 0);
        v8.store(&mut out, 8);
        assert_eq!(out[..4], data[4..8]);
        assert_eq!(out[8..16], data[8..16]);
    }

    #[test]
    fn arithmetic_is_lanewise() {
        let a = Half4::new(h(1.0), h(2.0), h(3.0), h(4.0));
        let b = Half4::splat(h(2.0));
        let r = a.mul4(b);
        for i in 0..4 {
            assert_eq!(r.lane(i).to_f32(), (i as f32 + 1.0) * 2.0);
        }
        let s = a.add4(b);
        assert_eq!(s.lane(3).to_f32(), 6.0);
        let f = a.fma4(b, Half4::splat(h(1.0)));
        assert_eq!(f.lane(0).to_f32(), 3.0);
    }

    #[test]
    fn half8_fma_matches_scalar_loop() {
        let data: Vec<Half> = (0..8).map(|i| h(i as f32 - 3.5)).collect();
        let x = Half8::load(&data, 0);
        let y = Half8::splat(h(1.5));
        let r = x.mul8(y);
        for (i, d) in data.iter().enumerate() {
            assert_eq!(r.lane(i).to_f32(), crate::intrinsics::hmul(*d, h(1.5)).to_f32());
        }
    }

    #[test]
    fn horizontal_reductions() {
        let a = Half4::new(h(1.0), h(2.0), h(3.0), h(4.0));
        assert_eq!(a.hsum_f32(), 10.0);
        assert_eq!(a.fold2(), Half2::from_f32s(4.0, 6.0));

        let data: Vec<Half> = (1..=8).map(|i| h(i as f32)).collect();
        let v = Half8::load(&data, 0);
        assert_eq!(v.hsum_f32(), 36.0);
        // fold2: (1+3+5+7, 2+4+6+8)
        assert_eq!(v.fold2(), Half2::from_f32s(16.0, 20.0));
    }

    #[test]
    #[should_panic(expected = "lane index")]
    fn lane_out_of_range_panics() {
        Half4::ZERO.lane(4);
    }
}
