//! bfloat16 — the extension comparison the paper's overflow analysis
//! invites.
//!
//! `bf16` keeps float's 8-bit exponent (no overflow at GNN magnitudes) but
//! has only 8 significand bits (vs. binary16's 11). It is the obvious
//! "what if we just used a wider-range 16-bit type?" answer to §3.1.3 —
//! and the comparison experiments show why it is not free: per-value
//! rounding error is ~8× coarser, and long unscaled reductions lose
//! precision instead of exploding. HalfGNN's discretized scaling keeps
//! binary16's accuracy *and* its range safety.

use std::fmt;

/// A 16-bit bfloat: 1 sign, 8 exponent, 7 mantissa bits (the top half of an
/// `f32`).
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Largest finite value, ≈ 3.39e38 (float-like range).
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Machine epsilon, 2⁻⁷ (8× coarser than binary16's 2⁻¹⁰).
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Raw bits.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// From raw bits.
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Round an `f32` to bfloat16 (round-to-nearest-even on the truncated
    /// 16 bits).
    pub fn from_f32(v: f32) -> Bf16 {
        let x = v.to_bits();
        if v.is_nan() {
            return Bf16(((x >> 16) as u16) | 0x0040); // quiet
        }
        let lsb = (x >> 16) & 1;
        let rounded = x.wrapping_add(0x7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Exact widening to `f32`.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// True for NaN.
    pub fn is_nan(self) -> bool {
        self.0 & 0x7FFF > 0x7F80
    }

    /// True for ±∞.
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7F80
    }

    /// True for finite values.
    pub fn is_finite(self) -> bool {
        self.0 & 0x7F80 != 0x7F80
    }

    /// Correctly-rounded bf16 add (compute in f32, round once).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }

    /// Correctly-rounded bf16 multiply.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl PartialEq for Bf16 {
    fn eq(&self, other: &Bf16) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}bf16", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Half;

    #[test]
    fn known_patterns() {
        assert_eq!(Bf16::from_f32(1.0).to_bits(), 0x3F80);
        assert_eq!(Bf16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Bf16::from_f32(-2.0).to_bits(), 0xC000);
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::from_f32(f32::INFINITY).is_infinite());
    }

    #[test]
    fn round_trip_is_identity_on_bf16_grid() {
        for bits in [0x0000u16, 0x3F80, 0x4049, 0x7F7F, 0xC2C8] {
            let b = Bf16::from_bits(bits);
            assert_eq!(Bf16::from_f32(b.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn rne_rounding() {
        // 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7: ties to
        // even (1.0).
        assert_eq!(Bf16::from_f32(1.0 + 2f32.powi(-8)), Bf16::ONE);
        // Slightly above rounds up.
        assert_eq!(Bf16::from_f32(1.0 + 2f32.powi(-8) + 1e-4).to_f32(), 1.0 + 2f32.powi(-7));
    }

    #[test]
    fn range_no_overflow_where_half_overflows() {
        // The §3.1.3 hub sum: 2000 x 60 = 120000.
        let mut acc_b = Bf16::ZERO;
        let mut acc_h = Half::ZERO;
        let vb = Bf16::from_f32(60.0);
        let vh = Half::from_f32(60.0);
        for _ in 0..2000 {
            acc_b = acc_b.add(vb);
            acc_h += vh;
        }
        assert!(acc_h.is_infinite(), "binary16 must overflow");
        assert!(acc_b.is_finite(), "bfloat16 must not");
        // ... but bf16's 8-bit mantissa makes the sum noticeably lossy.
        let err_b = (acc_b.to_f32() - 120_000.0).abs() / 120_000.0;
        assert!(err_b > 1e-3, "bf16 should show visible accumulation error, got {err_b}");
    }

    #[test]
    fn precision_half_beats_bf16_in_range() {
        // For in-range values, binary16 rounds ~8x finer.
        let mut worst_h = 0f32;
        let mut worst_b = 0f32;
        for i in 1..1000 {
            let v = 1.0 + i as f32 * 1e-3;
            worst_h = worst_h.max((Half::from_f32(v).to_f32() - v).abs() / v);
            worst_b = worst_b.max((Bf16::from_f32(v).to_f32() - v).abs() / v);
        }
        assert!(worst_b > 4.0 * worst_h, "bf16 {worst_b} vs half {worst_h}");
    }
}
