//! Slice utilities: alignment-checked vector reinterpretation, bulk
//! conversion, and feature padding.
//!
//! §4.1.2 of the paper: "a simple type-casting of the features tensor to
//! half2 allows us to use the half2 data type for data-loading ... hardware
//! would not allow accessing half2 values whose address is not a multiple of
//! 4 bytes". [`cast_half2`] models exactly that constraint — it returns an
//! error instead of a slice when the length is odd or the base address is
//! misaligned, which is what forces *feature padding* for odd feature
//! lengths (e.g. Reddit's 41 classes).

use crate::f16::Half;
use crate::vec2::Half2;

/// Why a vector-type cast of a half slice was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CastError {
    /// Slice length is not a multiple of the vector width.
    Length { len: usize, width: usize },
    /// Base address is not aligned to the vector size in bytes.
    Alignment { addr: usize, required: usize },
}

impl std::fmt::Display for CastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CastError::Length { len, width } => {
                write!(f, "slice length {len} is not a multiple of vector width {width}")
            }
            CastError::Alignment { addr, required } => {
                write!(f, "address {addr:#x} is not {required}-byte aligned")
            }
        }
    }
}

impl std::error::Error for CastError {}

/// Reinterpret a half slice as `Half2` words, enforcing the hardware's
/// 4-byte alignment and even-length constraints.
pub fn cast_half2(src: &[Half]) -> Result<&[Half2], CastError> {
    if !src.len().is_multiple_of(2) {
        return Err(CastError::Length { len: src.len(), width: 2 });
    }
    let addr = src.as_ptr() as usize;
    if !addr.is_multiple_of(std::mem::align_of::<Half2>()) {
        return Err(CastError::Alignment { addr, required: 4 });
    }
    // SAFETY: Half2 is repr(C) of two Half (no padding: size 4 = 2×2),
    // length and alignment were just checked, and the lifetime is inherited
    // from `src`.
    Ok(unsafe { std::slice::from_raw_parts(src.as_ptr().cast::<Half2>(), src.len() / 2) })
}

/// Mutable variant of [`cast_half2`].
pub fn cast_half2_mut(src: &mut [Half]) -> Result<&mut [Half2], CastError> {
    if !src.len().is_multiple_of(2) {
        return Err(CastError::Length { len: src.len(), width: 2 });
    }
    let addr = src.as_ptr() as usize;
    if !addr.is_multiple_of(std::mem::align_of::<Half2>()) {
        return Err(CastError::Alignment { addr, required: 4 });
    }
    // SAFETY: as in `cast_half2`, plus exclusive access via `&mut`.
    Ok(unsafe { std::slice::from_raw_parts_mut(src.as_mut_ptr().cast::<Half2>(), src.len() / 2) })
}

/// Round a feature length up to a multiple of `width` — *feature padding*
/// (§4.1.2): odd class counts (Reddit's 41) are padded so half2/half4/half8
/// casts stay legal.
pub const fn pad_feature_len(len: usize, width: usize) -> usize {
    len.div_ceil(width) * width
}

/// Convert an `f32` slice to freshly allocated halves (rounding each).
pub fn f32_slice_to_half(src: &[f32]) -> Vec<Half> {
    src.iter().map(|&v| Half::from_f32(v)).collect()
}

/// Convert a half slice to freshly allocated `f32`s (exact widening).
pub fn half_slice_to_f32(src: &[Half]) -> Vec<f32> {
    src.iter().map(|v| v.to_f32()).collect()
}

/// Copy-convert into an existing buffer without allocating.
pub fn convert_f32_to_half_into(src: &[f32], dst: &mut [Half]) {
    assert_eq!(src.len(), dst.len(), "conversion buffers must match");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = Half::from_f32(*s);
    }
}

/// Copy-convert halves into an existing `f32` buffer without allocating.
pub fn convert_half_to_f32_into(src: &[Half], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "conversion buffers must match");
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// Count of non-finite (Inf or NaN) lanes in a half slice — the overflow
/// detector used by accuracy experiments.
pub fn count_non_finite(src: &[Half]) -> usize {
    src.iter().filter(|h| !h.is_finite()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f32) -> Half {
        Half::from_f32(v)
    }

    #[test]
    fn cast_even_aligned_slice() {
        // Vec<Half2>-backed storage guarantees 4-byte alignment.
        let backing: Vec<Half2> = vec![Half2::from_f32s(1.0, 2.0), Half2::from_f32s(3.0, 4.0)];
        let halves: &[Half] =
            unsafe { std::slice::from_raw_parts(backing.as_ptr().cast::<Half>(), 4) };
        let pairs = cast_half2(halves).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1], Half2::from_f32s(3.0, 4.0));
    }

    #[test]
    fn cast_rejects_odd_length() {
        let v = vec![Half::ONE; 5];
        assert_eq!(cast_half2(&v).unwrap_err(), CastError::Length { len: 5, width: 2 });
    }

    #[test]
    fn cast_rejects_misaligned_base() {
        let v = [Half::ONE; 8];
        let addr = v.as_ptr() as usize;
        // One of the two starting offsets 0/1 is guaranteed 2-mod-4.
        let off = if addr.is_multiple_of(4) { 1 } else { 0 };
        let sub = &v[off..off + 2];
        match cast_half2(sub) {
            Err(CastError::Alignment { required: 4, .. }) => {}
            other => panic!("expected alignment error, got {other:?}"),
        }
    }

    #[test]
    fn feature_padding() {
        assert_eq!(pad_feature_len(41, 2), 42); // Reddit classes
        assert_eq!(pad_feature_len(41, 8), 48);
        assert_eq!(pad_feature_len(64, 8), 64);
        assert_eq!(pad_feature_len(0, 2), 0);
        assert_eq!(pad_feature_len(7, 4), 8);
    }

    #[test]
    fn bulk_conversions_round_trip() {
        let xs = [0.5f32, -1.25, 3.75, 1000.0];
        let hs = f32_slice_to_half(&xs);
        let back = half_slice_to_f32(&hs);
        assert_eq!(back, xs);

        let mut buf = vec![Half::ZERO; 4];
        convert_f32_to_half_into(&xs, &mut buf);
        assert_eq!(buf, hs);
        let mut fbuf = vec![0f32; 4];
        convert_half_to_f32_into(&hs, &mut fbuf);
        assert_eq!(fbuf, xs);
    }

    #[test]
    fn non_finite_counting() {
        let v = vec![h(1.0), Half::INFINITY, Half::NAN, h(-2.0), Half::NEG_INFINITY];
        assert_eq!(count_non_finite(&v), 3);
        assert_eq!(count_non_finite(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_conversion_buffers_panic() {
        convert_f32_to_half_into(&[1.0], &mut [Half::ZERO; 2]);
    }
}
