//! Software half-precision (IEEE 754 binary16) arithmetic and the vector
//! data types used by HalfGNN.
//!
//! The paper's accuracy findings hinge on exact FP16 semantics: overflow to
//! `INF` at ±65504, gradual underflow through subnormals, and NaN
//! propagation through follow-up operations. This crate implements binary16
//! from scratch (bit-level, round-to-nearest-even) rather than wrapping a
//! hardware type, so every overflow the paper describes is reproduced
//! deterministically on any host.
//!
//! Three arithmetic paths mirror Fig. 3 of the paper:
//!
//! * **Implicit float promotion** (Fig. 3a) — the `std::ops` impls on
//!   [`Half`]: operands are converted to `f32`, the op runs in `f32`, and the
//!   result is rounded back. This is what CUDA's native `+`/`*` on `__half`
//!   does, and what DGL's kernels effectively execute.
//! * **Half intrinsics** (Fig. 3b) — [`intrinsics`]: correctly-rounded
//!   scalar half arithmetic (`hadd`, `hmul`, `hfma`, …) with no persistent
//!   float state. Same throughput as float on real GPUs.
//! * **Half2 SIMD** (Fig. 3c) — [`Half2`]: two lanes per instruction,
//!   doubling arithmetic throughput. [`Half4`] and [`Half8`] are the paper's
//!   proposed wider types: native *data-load* vectors (backed by
//!   `float2`/`float4`-sized words) whose arithmetic decomposes into `half2`
//!   operations, exactly as §5.1.2 specifies.
//!
//! All three paths round their results through [`Half::from_f32`]; the
//! [`overflow`] module exploits that choke point to record, under the
//! opt-in `provenance` feature, the first op site that produced an
//! INF/NaN — the forensic trail behind the paper's Fig. 1c NaN collapse.

pub mod bf16;
pub mod f16;
pub mod intrinsics;
pub mod overflow;
pub mod quant;
pub mod slice;
pub mod vec2;
pub mod vec48;

pub use bf16::Bf16;
pub use f16::Half;
pub use vec2::Half2;
pub use vec48::{Half4, Half8};

/// Re-export of the scalar type, intrinsics and vector types for glob imports.
pub mod prelude {
    pub use crate::f16::Half;
    pub use crate::intrinsics::*;
    pub use crate::vec2::Half2;
    pub use crate::vec48::{Half4, Half8};
}
