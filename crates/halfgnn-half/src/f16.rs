//! Bit-exact IEEE 754 binary16 scalar type.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Finite range ±65504; values ≥ 65520 round to `INF` under
//! round-to-nearest-even, values in (65504, 65520) round down to 65504.
//! Smallest positive normal is 2⁻¹⁴ ≈ 6.1e-5; subnormals reach 2⁻²⁴.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// Arithmetic through the `std::ops` traits follows the *implicit float
/// promotion* path (Fig. 3a of the paper): both operands are widened to
/// `f32`, the operation runs in `f32`, and the result is rounded back to
/// binary16 with round-to-nearest-even. Use [`crate::intrinsics`] for the
/// half-intrinsic path and [`crate::Half2`] for the SIMD path.
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct Half(pub(crate) u16);

impl PartialEq for Half {
    /// IEEE numeric equality: −0 == +0, NaN != NaN.
    fn eq(&self, other: &Half) -> bool {
        self.to_f32() == other.to_f32()
    }
}

/// Exponent bias of binary16.
const BIAS: i32 = 15;

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Half = Half(0x8000);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Half = Half(0xBC00);
    /// Largest finite value, 65504.
    pub const MAX: Half = Half(0x7BFF);
    /// Most negative finite value, −65504.
    pub const MIN: Half = Half(0xFBFF);
    /// Smallest positive *normal* value, 2⁻¹⁴ ≈ 6.103515625e-5.
    pub const MIN_POSITIVE: Half = Half(0x0400);
    /// Smallest positive subnormal value, 2⁻²⁴ ≈ 5.96e-8.
    pub const MIN_POSITIVE_SUBNORMAL: Half = Half(0x0001);
    /// Machine epsilon (2⁻¹⁰) — the gap between 1.0 and the next value.
    pub const EPSILON: Half = Half(0x1400);
    /// Positive infinity, produced on overflow.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// A quiet NaN.
    pub const NAN: Half = Half(0x7E00);

    /// Construct from raw binary16 bits.
    #[inline(always)]
    pub const fn from_bits(bits: u16) -> Half {
        Half(bits)
    }

    /// Raw binary16 bit pattern.
    #[inline(always)]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values whose magnitude rounds to ≥ 65520 become `±INF` (the overflow
    /// the paper's §3.1.3 analyses); tiny values flush through subnormals to
    /// signed zero.
    ///
    /// Every arithmetic path in this crate rounds its result through this
    /// function, so under the `provenance` feature it doubles as the
    /// observation point for [`crate::overflow`] tracking.
    #[inline]
    pub fn from_f32(value: f32) -> Half {
        let h = Half::from_f32_raw(value);
        #[cfg(feature = "provenance")]
        crate::overflow::record(value, h);
        h
    }

    /// The pure, uninstrumented conversion — identical numerics to
    /// [`Half::from_f32`], never observed by overflow tracking.
    pub fn from_f32_raw(value: f32) -> Half {
        let x = value.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let abs = x & 0x7FFF_FFFF;

        if abs >= 0x7F80_0000 {
            // Source is Inf or NaN.
            if abs > 0x7F80_0000 {
                // NaN: keep the top payload bits, force quiet bit so the
                // payload can never collapse to the Inf pattern.
                return Half(sign | 0x7E00 | ((abs >> 13) & 0x03FF) as u16);
            }
            return Half(sign | 0x7C00);
        }

        let exp16 = (abs >> 23) as i32 - 112; // rebias 127 -> 15
        if exp16 >= 0x1F {
            // |v| >= 2^16: overflow to infinity regardless of rounding.
            return Half(sign | 0x7C00);
        }
        if exp16 <= 0 {
            // Result is subnormal (or underflows to zero).
            if exp16 < -10 {
                // |v| < 2^-25: rounds to zero (2^-25 itself ties to even 0,
                // handled by the rounding path below at exp16 == -10).
                return Half(sign);
            }
            let man = (abs & 0x007F_FFFF) | 0x0080_0000; // implicit 1
            let shift = (14 - exp16) as u32; // 14..=24
            let a = man >> shift;
            let rem = man & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut r = a as u16;
            if rem > halfway || (rem == halfway && (a & 1) == 1) {
                r += 1; // may carry into the min-normal encoding: correct
            }
            return Half(sign | r);
        }

        // Normal result: shift 23-bit mantissa down to 10 bits with RNE.
        let man = abs & 0x007F_FFFF;
        let a = man >> 13;
        let rem = man & 0x1FFF;
        let mut r = ((exp16 as u16) << 10) | (a as u16);
        if rem > 0x1000 || (rem == 0x1000 && (a & 1) == 1) {
            // Carry may ripple into the exponent and even into the Inf
            // encoding (65520 <= |v| < 65536): exactly IEEE behaviour.
            r += 1;
        }
        Half(sign | r)
    }

    /// Widen to `f32`. Exact: every binary16 value is representable in `f32`.
    pub fn to_f32(self) -> f32 {
        let h = self.0;
        let sign = ((h & 0x8000) as u32) << 16;
        let exp = ((h >> 10) & 0x1F) as u32;
        let man = (h & 0x03FF) as u32;
        let bits = if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: renormalize. Top set bit of `man` is at
                // position p in 0..=9; value = 2^(p-24) * 1.frac.
                let p = 31 - man.leading_zeros();
                let shift = 10 - p;
                let m = (man << shift) & 0x03FF;
                let e = 103 + p; // (p - 24) + 127
                sign | (e << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            // Inf / NaN
            sign | 0x7F80_0000 | (man << 13)
        } else {
            sign | ((exp + 112) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// Convert from `f64` (via `f32`; double rounding is harmless for the
    /// magnitudes GNN feature data takes, and tests pin the behaviour).
    pub fn from_f64(value: f64) -> Half {
        Half::from_f32(value as f32)
    }

    /// Widen to `f64`.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True for either infinity.
    #[inline(always)]
    pub const fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7C00
    }

    /// True for NaN.
    #[inline(always)]
    pub const fn is_nan(self) -> bool {
        self.0 & 0x7FFF > 0x7C00
    }

    /// True for anything that is neither Inf nor NaN.
    #[inline(always)]
    pub const fn is_finite(self) -> bool {
        self.0 & 0x7C00 != 0x7C00
    }

    /// True for subnormals (non-zero values below [`Half::MIN_POSITIVE`]).
    #[inline(always)]
    pub const fn is_subnormal(self) -> bool {
        self.0 & 0x7C00 == 0 && self.0 & 0x03FF != 0
    }

    /// True for positive or negative zero.
    #[inline(always)]
    pub const fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// Sign bit set (note: true for −0.0 and negative NaNs).
    #[inline(always)]
    pub const fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Absolute value (clears the sign bit; exact, no rounding).
    #[inline(always)]
    pub const fn abs(self) -> Half {
        Half(self.0 & 0x7FFF)
    }

    /// Exponent field with bias removed, treating subnormals as `-15`.
    pub const fn exponent(self) -> i32 {
        ((self.0 >> 10) & 0x1F) as i32 - BIAS
    }

    /// Max of two values; propagates NaN like `f32::max` (ignores NaN when
    /// the other operand is a number).
    pub fn max(self, other: Half) -> Half {
        Half::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// Min of two values, NaN-ignoring.
    pub fn min(self, other: Half) -> Half {
        Half::from_f32(self.to_f32().min(other.to_f32()))
    }
}

impl From<f32> for Half {
    fn from(v: f32) -> Half {
        Half::from_f32(v)
    }
}

impl From<Half> for f32 {
    fn from(v: Half) -> f32 {
        v.to_f32()
    }
}

macro_rules! promote_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl std::ops::$trait for Half {
            type Output = Half;
            /// Implicit float promotion (Fig. 3a): compute in `f32`, round
            /// the result back to binary16.
            #[inline]
            fn $fn(self, rhs: Half) -> Half {
                Half::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

promote_binop!(Add, add, +);
promote_binop!(Sub, sub, -);
promote_binop!(Mul, mul, *);
promote_binop!(Div, div, /);

impl std::ops::Neg for Half {
    type Output = Half;
    #[inline(always)]
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

impl std::ops::AddAssign for Half {
    #[inline]
    fn add_assign(&mut self, rhs: Half) {
        *self = *self + rhs;
    }
}

impl PartialOrd for Half {
    fn partial_cmp(&self, other: &Half) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}h16", self.to_f32())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(Half::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Half::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(Half::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(Half::from_f32(-1.0).to_bits(), 0xBC00);
        assert_eq!(Half::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(Half::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(Half::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(Half::from_f32(f32::INFINITY).to_bits(), 0x7C00);
        assert_eq!(Half::from_f32(f32::NEG_INFINITY).to_bits(), 0xFC00);
        // 1/3 rounds to 0x3555 (0.333251953125)
        assert_eq!(Half::from_f32(1.0 / 3.0).to_bits(), 0x3555);
    }

    #[test]
    fn round_trip_all_finite_halves() {
        // Exhaustive: every finite binary16 survives the f32 round trip.
        for bits in 0..=u16::MAX {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                assert!(Half::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(Half::from_f32(h.to_f32()).to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn overflow_boundary_rne() {
        // The largest finite half is 65504; the rounding boundary to Inf is
        // 65520 (midpoint 65504 + 16, ties to even -> Inf since mantissa of
        // MAX is odd... actually 65520 is exactly the midpoint between
        // 65504 and the first non-representable step 65536).
        assert_eq!(Half::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(Half::from_f32(65519.0).to_bits(), 0x7BFF);
        assert!(Half::from_f32(65520.0).is_infinite());
        assert!(Half::from_f32(65536.0).is_infinite());
        assert!(Half::from_f32(1e9).is_infinite());
        assert!(Half::from_f32(-65520.0).is_infinite());
        assert!(Half::from_f32(-65520.0).is_sign_negative());
    }

    #[test]
    fn underflow_boundary_rne() {
        let tiny = 2f32.powi(-24); // smallest subnormal
        assert_eq!(Half::from_f32(tiny).to_bits(), 0x0001);
        // Exactly half the smallest subnormal ties to even zero.
        assert_eq!(Half::from_f32(tiny / 2.0).to_bits(), 0x0000);
        // Slightly more than half rounds up to the smallest subnormal.
        assert_eq!(Half::from_f32(tiny * 0.75).to_bits(), 0x0001);
        assert_eq!(Half::from_f32(tiny / 4.0).to_bits(), 0x0000);
        assert_eq!(Half::from_f32(-tiny).to_bits(), 0x8001);
    }

    #[test]
    fn subnormal_values() {
        assert!(Half::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!Half::MIN_POSITIVE.is_subnormal());
        assert_eq!(Half::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(Half::MIN_POSITIVE_SUBNORMAL.to_f32(), 5.960_464_5e-8);
        // A mid-range subnormal round-trips.
        let h = Half::from_bits(0x0201);
        assert_eq!(Half::from_f32(h.to_f32()).to_bits(), 0x0201);
    }

    #[test]
    fn nan_propagation() {
        assert!(Half::NAN.is_nan());
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!((Half::NAN + Half::ONE).is_nan());
        assert!((Half::INFINITY - Half::INFINITY).is_nan());
        assert!((Half::INFINITY * Half::ZERO).is_nan());
        assert!((Half::ZERO / Half::ZERO).is_nan());
        // NaN != NaN
        assert_ne!(Half::NAN.to_f32(), Half::NAN.to_f32());
    }

    #[test]
    fn inf_arithmetic_matches_ieee() {
        assert_eq!(Half::INFINITY + Half::ONE, Half::INFINITY);
        assert_eq!(Half::MAX + Half::MAX, Half::INFINITY);
        assert_eq!(-Half::INFINITY, Half::NEG_INFINITY);
        assert!((Half::INFINITY + Half::NEG_INFINITY).is_nan());
    }

    #[test]
    fn promotion_arithmetic_rounds_once() {
        // 1 + 2^-11 is not representable: RNE ties to even -> stays 1.0.
        let eps_half = Half::from_f32(2f32.powi(-11));
        assert_eq!(Half::ONE + eps_half, Half::ONE);
        // 1 + 2^-10 is exactly representable.
        assert_eq!((Half::ONE + Half::EPSILON).to_f32(), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn accumulation_overflow_reproduces_paper() {
        // Summing 1.0 many times in half: representable integers stop at
        // 2048 + steps of 2; the sum saturates and then jumps to Inf only
        // when each *individual* add overflows. Summing large values does
        // overflow: this is the SpMM reduction pathology of §3.1.3.
        let big = Half::from_f32(600.0);
        let mut acc = Half::ZERO;
        for _ in 0..200 {
            acc += big;
        }
        assert!(acc.is_infinite(), "200 * 600 = 120000 > 65504 must overflow");
    }

    #[test]
    fn ordering_and_comparison() {
        assert!(Half::from_f32(1.5) > Half::ONE);
        assert!(Half::NEG_INFINITY < Half::MIN);
        assert!(Half::INFINITY > Half::MAX);
        assert_eq!(Half::ZERO, Half::NEG_ZERO); // IEEE: -0 == +0 numerically
        assert!(Half::NAN.partial_cmp(&Half::ONE).is_none());
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(Half::NAN.max(Half::ONE), Half::ONE);
        assert_eq!(Half::ONE.min(Half::NAN), Half::ONE);
        assert_eq!(Half::ONE.max(Half::from_f32(2.0)).to_f32(), 2.0);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Half::from_f32(1.5)), "1.5");
        assert_eq!(format!("{:?}", Half::ONE), "1h16");
    }

    #[test]
    fn f64_conversions() {
        assert_eq!(Half::from_f64(0.25).to_f64(), 0.25);
        assert!(Half::from_f64(1e30).is_infinite());
    }

    #[test]
    fn exponent_field() {
        assert_eq!(Half::ONE.exponent(), 0);
        assert_eq!(Half::from_f32(2.0).exponent(), 1);
        assert_eq!(Half::from_f32(0.25).exponent(), -2);
        assert_eq!(Half::MIN_POSITIVE.exponent(), -14);
    }
}
