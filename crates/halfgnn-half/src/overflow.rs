//! Overflow provenance: *where* did the first INF/NaN come from?
//!
//! The paper's Fig. 1c failure mode — a half-precision run whose loss
//! collapses to NaN — always starts with one concrete rounding event:
//! some `f32 → binary16` conversion produced `±INF` (finite input whose
//! magnitude rounds to ≥ 65520, §3.1.3) or passed through a non-finite
//! value created upstream. Every arithmetic path in this crate (implicit
//! promotion, intrinsics, `Half2`/`Half4`/`Half8`) funnels its final
//! rounding through [`crate::Half::from_f32`], which makes that function a
//! single choke point where provenance can be observed.
//!
//! This module is an **opt-in** recorder for that choke point:
//!
//! * The hook inside `Half::from_f32` is compiled only under the
//!   `provenance` cargo feature, so default builds pay nothing.
//! * Even when compiled, recording happens only between [`begin`] and
//!   [`take`] — a thread-local flag keeps the inactive cost to one
//!   `Cell` read per conversion.
//! * Call sites label themselves with [`site`] guards (kernel entry
//!   points, tensor ops, model layers); the first non-finite conversion
//!   inside a tracking window is captured with its label, making "which
//!   tensor overflowed first this epoch" a direct query.
//!
//! The types below are always compiled (only the recording hook is
//! feature-gated), so downstream crates can plumb summaries through their
//! APIs without `cfg` noise. With the feature off, [`take`] simply returns
//! an empty [`Summary`].
//!
//! Thread-locality: the cost-model backend (`ExecMode::Sim`) runs every
//! CTA sequentially on the calling thread, so one tracking window sees
//! every conversion of a kernel launch and provenance is exact. The
//! real-threads fast backend (`ExecMode::Fast`) runs CTAs on pool worker
//! threads that do not share the recorder's thread-local state —
//! provenance under fast mode is documented as incomplete (conversions on
//! workers are simply not recorded); switch to `Sim` when chasing an
//! overflow. Merging per-worker windows at join points is future work.

#[cfg(feature = "provenance")]
use crate::Half;
use std::cell::{Cell, RefCell};
use std::fmt;

/// Why a conversion produced a non-finite half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonfiniteKind {
    /// Finite `f32` input rounded to `±INF`: a genuine FP16 range
    /// overflow (|input| ≥ 65520 after rounding).
    Overflow,
    /// The input was already `±INF` — created upstream by `f32` math
    /// (e.g. division by zero), propagated through this conversion.
    InfPropagated,
    /// The input was already NaN (e.g. `INF − INF`, `0/0`), propagated
    /// (and quieted) through this conversion.
    NanPropagated,
}

impl fmt::Display for NonfiniteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonfiniteKind::Overflow => write!(f, "FP16 overflow (finite f32 → INF)"),
            NonfiniteKind::InfPropagated => write!(f, "INF propagated from f32 math"),
            NonfiniteKind::NanPropagated => write!(f, "NaN propagated from f32 math"),
        }
    }
}

/// The first non-finite conversion observed in a tracking window.
#[derive(Clone, Debug)]
pub struct OverflowEvent {
    /// The [`site`] labels active when the event happened, outermost
    /// first, joined with `/` (e.g. `gcn.layer1.aggregate/cusparse_f16_spmmv`).
    pub site: String,
    /// How many conversions the window had seen before this one.
    pub conversion_index: u64,
    /// The `f32` value whose conversion went non-finite.
    pub input: f32,
    /// Classification of the event.
    pub kind: NonfiniteKind,
}

impl fmt::Display for OverflowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at site '{}' (conversion #{}, input {:e})",
            self.kind, self.site, self.conversion_index, self.input
        )
    }
}

/// Counters for one tracking window ([`begin`] … [`take`]).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Total `f32 → half` conversions observed.
    pub conversions: u64,
    /// Conversions where a finite input overflowed to `±INF`.
    pub overflows: u64,
    /// Conversions that propagated an upstream `±INF`.
    pub inf_propagated: u64,
    /// Conversions that propagated an upstream NaN.
    pub nan_propagated: u64,
    /// The first non-finite conversion, with its site label — the genesis
    /// event every later INF/NaN descends from.
    pub first: Option<OverflowEvent>,
}

impl Summary {
    /// Total non-finite conversions of any kind.
    pub fn nonfinite(&self) -> u64 {
        self.overflows + self.inf_propagated + self.nan_propagated
    }

    /// True when the window saw no non-finite conversion at all.
    pub fn is_clean(&self) -> bool {
        self.first.is_none()
    }
}

#[cfg(feature = "provenance")]
const UNLABELED: &str = "<unlabeled>";

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SITES: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static WINDOW: RefCell<Summary> = RefCell::new(Summary::default());
}

/// Start a tracking window on this thread, clearing any previous one.
pub fn begin() {
    WINDOW.with(|w| *w.borrow_mut() = Summary::default());
    ACTIVE.with(|a| a.set(true));
}

/// Stop tracking and return the window's summary.
///
/// Without the `provenance` feature no conversions are ever recorded, so
/// this returns an empty (clean) summary.
pub fn take() -> Summary {
    ACTIVE.with(|a| a.set(false));
    WINDOW.with(|w| std::mem::take(&mut *w.borrow_mut()))
}

/// True while a tracking window is open on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Run `f` inside its own nested tracking window and return its output
/// together with the conversions *it alone* performed.
///
/// Any outer window is suspended for the duration and resumed untouched
/// afterwards — its counters never see `f`'s conversions. This is what
/// lets the kernel autotuner evaluate (and deliberately overflow)
/// candidate plans in the middle of a training epoch without polluting
/// that epoch's provenance summary. Without the `provenance` feature the
/// returned summary is empty, like [`take`].
pub fn isolated<T>(f: impl FnOnce() -> T) -> (T, Summary) {
    let outer_active = ACTIVE.with(|a| a.get());
    let outer_window = WINDOW.with(|w| std::mem::take(&mut *w.borrow_mut()));
    begin();
    let out = f();
    let summary = take();
    WINDOW.with(|w| *w.borrow_mut() = outer_window);
    ACTIVE.with(|a| a.set(outer_active));
    (out, summary)
}

/// RAII guard popping its site label (and anything pushed above it) on drop.
pub struct SiteGuard {
    depth: usize,
}

impl Drop for SiteGuard {
    fn drop(&mut self) {
        SITES.with(|s| s.borrow_mut().truncate(self.depth));
    }
}

/// Label the current region of computation (kernel, tensor op, layer).
///
/// Guards nest: a trainer can label `gcn.layer1.aggregate` and the kernel
/// underneath labels `cusparse_f16_spmmv`; the first non-finite conversion
/// reports the whole stack joined with `/`, identifying both the logical
/// tensor and the kernel producing it. Cheap enough to leave in
/// unconditionally.
#[must_use = "the label lasts only as long as the returned guard"]
pub fn site(label: &'static str) -> SiteGuard {
    SiteGuard {
        depth: SITES.with(|s| {
            let mut s = s.borrow_mut();
            s.push(label);
            s.len() - 1
        }),
    }
}

/// The recorder hook — called by `Half::from_f32` under the `provenance`
/// feature for every conversion.
#[cfg(feature = "provenance")]
#[inline]
pub(crate) fn record(input: f32, out: Half) {
    if !ACTIVE.with(|a| a.get()) {
        return;
    }
    WINDOW.with(|w| {
        let mut s = w.borrow_mut();
        s.conversions += 1;
        let kind = if out.is_infinite() {
            if input.is_finite() {
                NonfiniteKind::Overflow
            } else {
                NonfiniteKind::InfPropagated
            }
        } else if out.is_nan() {
            NonfiniteKind::NanPropagated
        } else {
            return;
        };
        match kind {
            NonfiniteKind::Overflow => s.overflows += 1,
            NonfiniteKind::InfPropagated => s.inf_propagated += 1,
            NonfiniteKind::NanPropagated => s.nan_propagated += 1,
        }
        if s.first.is_none() {
            let site = SITES.with(|stack| {
                let stack = stack.borrow();
                if stack.is_empty() {
                    UNLABELED.to_string()
                } else {
                    stack.join("/")
                }
            });
            s.first =
                Some(OverflowEvent { site, conversion_index: s.conversions - 1, input, kind });
        }
    });
}

#[cfg(all(test, feature = "provenance"))]
mod tests {
    use super::*;
    use crate::intrinsics::{hadd, hmul};

    #[test]
    fn window_captures_first_overflow_site() {
        begin();
        let a = {
            let _g = site("layer1.spmm");
            hadd(Half::from_f32(400.0), Half::from_f32(500.0)) // fine: 900
        };
        let b = {
            let _g = site("layer2.gemm");
            hmul(Half::from_f32(300.0), Half::from_f32(300.0)) // 9e4 → INF
        };
        let s = take();
        assert!(a.is_finite());
        assert!(b.is_infinite());
        assert_eq!(s.overflows, 1);
        let first = s.first.expect("event recorded");
        assert_eq!(first.site, "layer2.gemm");
        assert_eq!(first.kind, NonfiniteKind::Overflow);
        assert_eq!(first.input, 9.0e4);
    }

    #[test]
    fn propagation_is_distinguished_from_overflow() {
        begin();
        let _g = site("div");
        let inf = Half::from_f32(1.0f32 / 0.0);
        let nan = Half::from_f32(f32::NAN);
        let s = take();
        assert!(inf.is_infinite() && nan.is_nan());
        assert_eq!(s.overflows, 0);
        assert_eq!(s.inf_propagated, 1);
        assert_eq!(s.nan_propagated, 1);
        assert_eq!(s.first.unwrap().kind, NonfiniteKind::InfPropagated);
    }

    #[test]
    fn inactive_thread_records_nothing() {
        // No begin(): conversions must not accumulate anywhere.
        let _ = Half::from_f32(1e9);
        begin();
        let s = take();
        assert_eq!(s.conversions, 0);
        assert!(s.is_clean());
    }

    #[test]
    fn nested_sites_restore_on_drop() {
        begin();
        {
            let _outer = site("outer");
            {
                let _inner = site("inner");
            }
            let _ = Half::from_f32(1e9); // overflow under "outer" again
        }
        let s = take();
        assert_eq!(s.first.unwrap().site, "outer");
    }

    #[test]
    fn nested_sites_compose_into_a_path() {
        begin();
        {
            let _layer = site("gcn.layer1.aggregate");
            let _kernel = site("cusparse_f16_spmmv");
            let _ = Half::from_f32(1e9);
        }
        let s = take();
        assert_eq!(s.first.unwrap().site, "gcn.layer1.aggregate/cusparse_f16_spmmv");
    }

    #[test]
    fn isolated_window_shields_the_outer_one() {
        begin();
        let _ = Half::from_f32(2.0); // outer: 1 clean conversion
        let (v, inner) = isolated(|| {
            let _ = Half::from_f32(1e9); // inner overflow, invisible outside
            Half::from_f32(3.0)
        });
        let _ = Half::from_f32(4.0); // outer window must still be recording
        let outer = take();
        assert_eq!(v.to_f32(), 3.0);
        assert_eq!(inner.conversions, 2);
        assert_eq!(inner.overflows, 1);
        assert_eq!(outer.conversions, 2);
        assert!(outer.is_clean(), "inner overflow leaked into the outer window");
    }

    #[test]
    fn isolated_without_an_outer_window_leaves_recording_off() {
        let (_, inner) = isolated(|| Half::from_f32(1e9));
        assert_eq!(inner.overflows, 1);
        assert!(!is_active());
        let _ = Half::from_f32(1e9); // not recorded anywhere
        begin();
        let s = take();
        assert_eq!(s.conversions, 0);
    }

    #[test]
    fn take_resets_the_window() {
        begin();
        let _ = Half::from_f32(1e9);
        let first = take();
        assert_eq!(first.overflows, 1);
        begin();
        let second = take();
        assert_eq!(second.conversions, 0);
        assert!(second.is_clean());
    }
}
