//! Exhaustive binary16 validation: every one of the 2^16 bit patterns
//! round-trips through `f32`, and the round-to-nearest-even boundaries the
//! paper's overflow analysis (§3.1.3) depends on are pinned value by value.

use halfgnn_half::Half;

/// `half → f32 → half` must be the identity on every bit pattern: the
/// widening is exact, so the only way to lose information is a rounding
/// bug in `from_f32`. NaNs keep NaN-ness (payloads may be quietized).
#[test]
fn exhaustive_round_trip_all_65536_bit_patterns() {
    for bits in 0..=u16::MAX {
        let h = Half::from_bits(bits);
        let widened = h.to_f32();
        let back = Half::from_f32(widened);
        if h.is_nan() {
            assert!(back.is_nan(), "bits {bits:#06x}: NaN must survive the round trip");
            assert_eq!(
                back.to_bits() & 0x8000,
                bits & 0x8000,
                "bits {bits:#06x}: NaN sign must survive"
            );
        } else {
            assert_eq!(
                back.to_bits(),
                bits,
                "bits {bits:#06x} (value {widened:e}) must round-trip exactly"
            );
        }
    }
}

/// `to_f64` must agree with `to_f32` everywhere (binary16 ⊂ f32 ⊂ f64).
#[test]
fn exhaustive_f64_widening_matches_f32() {
    for bits in 0..=u16::MAX {
        let h = Half::from_bits(bits);
        if h.is_nan() {
            assert!(h.to_f64().is_nan());
        } else {
            assert_eq!(h.to_f64(), h.to_f32() as f64, "bits {bits:#06x}");
        }
    }
}

/// Round-to-nearest-even boundary table. Each row is `(f32 input, expected
/// binary16 bits)`; the cases cover tie-to-even at mantissa granularity,
/// the subnormal/zero underflow boundary, and the 65504/65520 overflow
/// cliff — with both signs.
#[test]
fn rne_boundary_table() {
    let ulp = |p: i32| 2.0_f32.powi(p);
    let cases: &[(f32, u16, &str)] = &[
        // --- ties around 1.0 (half ulp there is 2^-10, half of it 2^-11)
        (1.0, 0x3C00, "exact one"),
        (1.0 + ulp(-11), 0x3C00, "tie below odd: to even mantissa 0"),
        (1.0 + ulp(-11) + ulp(-22), 0x3C01, "just above the tie: rounds up"),
        (1.0 + 3.0 * ulp(-11), 0x3C02, "tie above odd mantissa 1: to even 2"),
        (1.0 + ulp(-10), 0x3C01, "exactly representable next value"),
        // --- subnormal underflow boundary (smallest subnormal is 2^-24)
        (ulp(-24), 0x0001, "smallest subnormal is exact"),
        (ulp(-25), 0x0000, "tie between 0 and 2^-24: to even zero"),
        (ulp(-25) + ulp(-40), 0x0001, "just above the tie: smallest subnormal"),
        (1.5 * ulp(-24), 0x0002, "tie between subnormals 1 and 2: to even 2"),
        (ulp(-26), 0x0000, "below the tie: zero"),
        (ulp(-14), 0x0400, "smallest normal is exact"),
        (ulp(-14) - ulp(-24), 0x03FF, "largest subnormal is exact"),
        // --- overflow cliff (max finite 65504; ≥ 65520 rounds to INF)
        (65504.0, 0x7BFF, "max finite is exact"),
        (65519.0, 0x7BFF, "below the overflow tie: rounds down to max"),
        (65520.0, 0x7C00, "tie between 65504 and 2^16: to even = INF"),
        (65521.0, 0x7C00, "above the tie: INF"),
        (65536.0, 0x7C00, "2^16 overflows regardless of rounding"),
        (f32::MAX, 0x7C00, "f32::MAX overflows"),
        (f32::INFINITY, 0x7C00, "INF propagates"),
        // --- negative mirror of every boundary
        (-1.0 - ulp(-11), 0xBC00, "negative tie to even"),
        (-ulp(-25), 0x8000, "negative underflow keeps the sign: -0"),
        (-65519.0, 0xFBFF, "negative below the cliff"),
        (-65520.0, 0xFC00, "negative tie overflows to -INF"),
        (-f32::INFINITY, 0xFC00, "-INF propagates"),
        // --- signed zero
        (0.0, 0x0000, "+0"),
        (-0.0, 0x8000, "-0"),
    ];
    for (input, want, why) in cases {
        let got = Half::from_f32(*input).to_bits();
        assert_eq!(got, *want, "{why}: from_f32({input:e}) = {got:#06x}, want {want:#06x}");
    }
    // NaN quietization: any f32 NaN converts to a binary16 NaN.
    assert!(Half::from_f32(f32::NAN).is_nan());
}

/// The instrumented and raw conversion paths must be numerically identical
/// for every representable half (the provenance hook must never change
/// values, only observe them).
#[test]
fn instrumented_conversion_equals_raw() {
    for bits in 0..=u16::MAX {
        let v = Half::from_bits(bits).to_f32();
        let a = Half::from_f32(v).to_bits();
        let b = Half::from_f32_raw(v).to_bits();
        assert_eq!(a, b, "bits {bits:#06x}");
    }
}
