//! Exhaustive INT8 quantization validation, mirroring `exhaustive_f16`:
//! every finite binary16 payload survives quantize → dequantize within
//! one quantization step at its own block scale (and at representative
//! coarser scales), and the ±127·2^e saturation boundaries are pinned
//! value by value — including the non-finite pins.

use halfgnn_half::quant::{self, block_exponent, dequantize, isolated, quantize_sr, BLOCK, QMAX};

const SEED: u64 = 0x51C8_0C0D;
const SITE: u64 = 0xF00D;

/// Quantize → dequantize at the value's own block scale must land within
/// one step (2^e) of the input, never saturate, and be deterministic —
/// for every one of the 2^16 binary16 payloads. Non-finite payloads pin
/// to the documented codes and are the only flagged events.
#[test]
fn exhaustive_round_trip_all_65536_f16_payloads() {
    let (_, sat) = isolated(|| {
        for bits in 0..=u16::MAX {
            let h = halfgnn_half::Half::from_bits(bits);
            let v = h.to_f32();
            if !v.is_finite() {
                continue; // pinned separately below
            }
            // The scale this value's own block would choose if it were
            // the block max: |v| ≤ 127·2^e by construction.
            let e = block_exponent(v.abs());
            let q = quantize_sr(v, e, SEED, SITE, bits as u64);
            let back = dequantize(q, e);
            let step = (2.0f64).powi(e);
            assert!(
                (back as f64 - v as f64).abs() < step,
                "bits {bits:#06x} (value {v:e}): code {q} at e={e} lands {back:e}, \
                 more than one step away"
            );
            // Purity: the same (seed, site, index) draws the same coin.
            assert_eq!(q, quantize_sr(v, e, SEED, SITE, bits as u64), "bits {bits:#06x}");
        }
    });
    assert_eq!(sat.saturated, 0, "a value can never saturate its own block scale");
    assert_eq!(sat.nonfinite_inputs, 0);
    assert!(sat.quantized >= 2 * 63488, "every finite payload must be observed");
}

/// The same exhaustive sweep at representative *coarser* block scales —
/// what a payload sees when it shares a block with a larger magnitude.
/// The error bound stays one step of the coarser scale and saturation
/// remains impossible (coarser scales only widen the representable
/// range).
#[test]
fn exhaustive_round_trip_at_coarser_block_scales() {
    for widen in [1i32, 4, 11] {
        let (_, sat) = isolated(|| {
            for bits in (0..=u16::MAX).step_by(7) {
                let h = halfgnn_half::Half::from_bits(bits);
                let v = h.to_f32();
                if !v.is_finite() {
                    continue;
                }
                let e = block_exponent(v.abs()) + widen;
                let q = quantize_sr(v, e, SEED, SITE, bits as u64);
                let back = dequantize(q, e);
                let step = (2.0f64).powi(e);
                assert!(
                    (back as f64 - v as f64).abs() < step,
                    "bits {bits:#06x} at widened e={e}: {back:e} vs {v:e}"
                );
            }
        });
        assert_eq!(sat.flagged(), 0, "widen {widen}");
    }
}

/// Saturation-boundary table at ±127·2^e for representative exponents.
/// Exactly ±QMAX·2^e is the last clean value (the scaled operand is the
/// integer 127 — no coin, no clamp); anything whose floor exceeds QMAX
/// clamps to ±127 and flags provenance.
#[test]
fn saturation_boundary_table() {
    for e in [-10i32, -3, 0, 5] {
        let step = (2.0f32).powi(e);
        let cases: &[(f32, i8, bool, &str)] = &[
            (QMAX as f32 * step, 127, false, "exact +boundary is clean"),
            (-(QMAX as f32) * step, -127, false, "exact -boundary is clean"),
            (128.5 * step, 127, true, "floor 128 clamps to +127"),
            (-128.5 * step, -127, true, "floor -129 clamps to -127"),
            (200.0 * step, 127, true, "far overrange clamps to +127"),
            (-200.0 * step, -127, true, "far overrange clamps to -127"),
        ];
        for &(v, want, flagged, why) in cases {
            let (q, sat) = isolated(|| quantize_sr(v, e, SEED, SITE, 0));
            assert_eq!(q, want, "e={e}: {why}");
            assert_eq!(sat.saturated > 0, flagged, "e={e}: {why}");
            assert_eq!(sat.nonfinite_inputs, 0, "e={e}: {why}");
        }
    }
}

/// Non-finite inputs pin deterministically: ±INF to ±127, NaN to 0 — and
/// every one is flagged as a non-finite quantization, never silently
/// absorbed.
#[test]
fn nonfinite_inputs_pin_and_flag() {
    let cases: &[(f32, i8)] = &[(f32::INFINITY, 127), (f32::NEG_INFINITY, -127), (f32::NAN, 0)];
    for &(v, want) in cases {
        for e in [-8i32, 0, 8] {
            let (q, sat) = isolated(|| quantize_sr(v, e, SEED, SITE, 3));
            assert_eq!(q, want, "{v} at e={e}");
            assert_eq!(sat.nonfinite_inputs, 1, "{v} at e={e} must flag");
            assert_eq!(sat.saturated, 0, "{v} at e={e}: wrong flag kind");
        }
    }
}

/// `block_exponent` minimality, exhaustively over binary16 magnitudes:
/// the chosen e satisfies `max_abs ≤ 127·2^e` and `e-1` would not.
#[test]
fn exhaustive_block_exponent_is_minimal() {
    for bits in 0..=u16::MAX {
        let v = halfgnn_half::Half::from_bits(bits).to_f32();
        if !v.is_finite() || v <= 0.0 {
            continue;
        }
        let e = block_exponent(v);
        let m = v as f64;
        assert!(m <= (QMAX as f64) * (2.0f64).powi(e), "bits {bits:#06x}: e={e} too small");
        assert!(m > (QMAX as f64) * (2.0f64).powi(e - 1), "bits {bits:#06x}: e={e} not minimal");
    }
}

/// `quantize_blocks` partitions its input into [`BLOCK`]-element scale
/// groups; each group's exponent is its own max-abs's minimal exponent,
/// so mixing a hub magnitude into one block never coarsens its
/// neighbors' scales.
#[test]
fn block_scales_are_local_to_their_block() {
    let mut vals = vec![0.25f32; 2 * BLOCK];
    vals[0] = 1000.0; // hub lives in block 0
    let (qb, sat) = isolated(|| quant::quantize_blocks(&vals, SEED, SITE, 0));
    assert_eq!(sat.flagged(), 0);
    assert_eq!(qb.exps.len(), 2);
    assert_eq!(qb.exps[0] as i32, block_exponent(1000.0));
    assert_eq!(qb.exps[1] as i32, block_exponent(0.25), "block 1 must not see the hub");
    // And the fine block's round-trip is correspondingly tight.
    let back = qb.dequantize();
    let fine_step = (2.0f64).powi(qb.exps[1] as i32);
    for (i, &b) in back.iter().enumerate().skip(BLOCK) {
        assert!((b as f64 - 0.25).abs() < fine_step, "elem {i}: {b}");
    }
}
