//! Statistical test harness for stochastic rounding.
//!
//! Two properties make a lossy dtype trainable and debuggable, and both
//! are checked here over *keyed deterministic* streams (no test-run
//! randomness — a failure always reproduces):
//!
//! 1. **Unbiasedness**: the mean signed rounding error of a block is
//!    zero in expectation; an observed mean outside the computed
//!    `z·step/(2·√n)` confidence band is a bias bug, not bad luck.
//! 2. **Schedule independence**: quantization is a pure function of
//!    `(seed, site, index)`, so any partition of the index space over
//!    any number of workers produces bitwise-identical codes.
//!
//! The harness functions are generic over "quantize a slice, give me
//! back the reconstruction and the step", so future lossy dtypes (i4,
//! block-f8, …) can reuse the same checks by swapping the closure.

use halfgnn_half::quant::{
    self, isolated, quantize_blocks, site_key, sr_mean_error_band, QuantizedBlocks, BLOCK,
};
use std::thread;

/// Deterministic value stream: reproducible pseudo-values in (-8, 8)
/// with varied magnitudes, independent of the SR coin stream (different
/// mixing constant).
fn keyed_values(n: usize, key: u64) -> Vec<f32> {
    let mut s = key.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((s >> 40) as f32) / (1u32 << 24) as f32; // [0, 1)
            (u - 0.5) * 16.0
        })
        .collect()
}

/// Harness check #1: per-block mean signed error within the band.
///
/// `quantize` maps a value slice to `(reconstruction, per-block step)`.
/// The band is `z·step/(2√n)` — SR error is zero-mean with standard
/// deviation at most `step/2`, so `z = 4.5` makes a false alarm over the
/// whole suite astronomically unlikely while still catching a bias of a
/// fraction of a step.
fn assert_blocks_unbiased(
    label: &str,
    values: &[f32],
    quantize: impl Fn(&[f32]) -> (Vec<f32>, Vec<f64>),
) {
    let (back, steps) = quantize(values);
    assert_eq!(back.len(), values.len(), "{label}: reconstruction length");
    let z = 4.5;
    let mut normalized_sum = 0.0f64; // error in units of the block step
    for (bi, block) in values.chunks(BLOCK).enumerate() {
        let step = steps[bi];
        let err: f64 =
            block.iter().zip(&back[bi * BLOCK..]).map(|(&v, &b)| b as f64 - v as f64).sum::<f64>()
                / block.len() as f64;
        let band = sr_mean_error_band(step, block.len(), z);
        assert!(
            err.abs() <= band,
            "{label}: block {bi} mean error {err:e} outside ±{band:e} (step {step:e})"
        );
        normalized_sum += err / step * block.len() as f64;
    }
    // Aggregate check at unit step: much tighter band, catches a small
    // systematic bias that hides inside every per-block band.
    let n = values.len();
    let global = normalized_sum / n as f64;
    let band = sr_mean_error_band(1.0, n, z);
    assert!(global.abs() <= band, "{label}: aggregate bias {global:e} outside ±{band:e}");
}

/// Harness check #2: partition the index space over `workers` threads;
/// the concatenated codes must be bitwise the serial result. Cuts are
/// BLOCK-aligned, so every worker sees whole scale groups — exactly how
/// the kernels divide wire buffers.
fn quantize_partitioned(values: &[f32], seed: u64, site: u64, workers: usize) -> QuantizedBlocks {
    let blocks = values.len().div_ceil(BLOCK);
    let per_worker = blocks.div_ceil(workers).max(1) * BLOCK;
    let mut parts: Vec<QuantizedBlocks> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = values
            .chunks(per_worker)
            .enumerate()
            .map(|(w, chunk)| {
                scope.spawn(move || quantize_blocks(chunk, seed, site, (w * per_worker) as u64))
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
    });
    let mut q = Vec::with_capacity(values.len());
    let mut exps = Vec::with_capacity(blocks);
    for p in parts {
        q.extend(p.q);
        exps.extend(p.exps);
    }
    QuantizedBlocks { q, exps }
}

#[test]
fn mean_rounding_error_per_block_is_unbiased() {
    let site = site_key("sr_stats.unbiased");
    for (case, key) in [(1u64, 11u64), (2, 22), (3, 33)] {
        let values = keyed_values(256 * BLOCK, key);
        assert_blocks_unbiased(&format!("case {case}"), &values, |vals| {
            let (qb, sat) = isolated(|| quantize_blocks(vals, 0xA11CE ^ case, site, 0));
            assert!(sat.is_clean(), "case {case}: {sat:?}");
            let steps = qb.exps.iter().map(|&e| (2.0f64).powi(e as i32)).collect::<Vec<_>>();
            (qb.dequantize(), steps)
        });
    }
}

/// Nearest rounding (what a *biased* quantizer would do) fails the same
/// band the SR stream passes — the harness has teeth.
#[test]
fn the_confidence_band_rejects_deterministic_nearest_rounding() {
    let values: Vec<f32> = (0..64 * BLOCK).map(|_| 1.0 + 0.3).collect();
    // Constant 1.3 at block exponent e: nearest rounding lands every
    // element on the same side, a full-bias worst case.
    let e = quant::block_exponent(1.3);
    let step = (2.0f64).powi(e);
    let nearest = |v: f32| ((v as f64 / step).round() * step) as f32;
    let err: f64 =
        values.iter().map(|&v| nearest(v) as f64 - v as f64).sum::<f64>() / values.len() as f64;
    let band = sr_mean_error_band(step, values.len(), 4.5);
    assert!(
        err.abs() > band,
        "nearest rounding of a constant stream must show its bias: {err:e} vs ±{band:e}"
    );
}

#[test]
fn identical_seed_site_streams_are_bitwise_reproducible_across_thread_counts() {
    let site = site_key("sr_stats.threads");
    let seed = 0xBEEF;
    let values = keyed_values(97 * BLOCK + 13, 5); // ragged tail on purpose
    let serial = quantize_blocks(&values, seed, site, 0);
    // The CI matrix drives this with HALFGNN_THREADS=1 and 4; default
    // covers both inline.
    let counts: Vec<usize> = match std::env::var("HALFGNN_THREADS") {
        Ok(v) => vec![v.parse().expect("HALFGNN_THREADS must be an integer")],
        Err(_) => vec![1, 4],
    };
    for workers in counts {
        let par = quantize_partitioned(&values, seed, site, workers);
        assert_eq!(par.q, serial.q, "{workers} workers: codes diverged");
        assert_eq!(par.exps, serial.exps, "{workers} workers: exponents diverged");
    }
    // A different seed really changes the stream (the equality above is
    // not vacuous).
    let other = quantize_blocks(&values, seed ^ 1, site, 0);
    assert_ne!(other.q, serial.q);
}
