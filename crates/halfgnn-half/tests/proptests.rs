//! Property-based tests for the binary16 implementation: the conversion is
//! checked against an independent reference model, and vector ops are
//! checked lanewise against the scalar intrinsics.

use halfgnn_half::prelude::*;
use halfgnn_half::slice;
use proptest::prelude::*;

/// Reference f32→binary16 conversion built on integer rounding of the exact
/// scaled significand — structurally different from the production
/// implementation (no bit surgery on the f32 encoding).
fn reference_f32_to_f16_bits(x: f32) -> u16 {
    if x.is_nan() {
        return 0x7E00 | if x.is_sign_negative() { 0x8000 } else { 0 };
    }
    let sign: u16 = if x.is_sign_negative() { 0x8000 } else { 0 };
    let a = x.abs() as f64;
    if a == 0.0 {
        return sign;
    }
    if x.is_infinite() {
        return sign | 0x7C00;
    }
    // Quantize to the binary16 grid: units of 2^(e-10) for normals with
    // exponent e, units of 2^-24 below the normal range.
    let e = a.log2().floor() as i32;
    let e = e.clamp(-14, 15);
    let ulp = 2f64.powi(e - 10).max(2f64.powi(-24));
    let q = a / ulp;
    // Round half to even on the integer grid.
    let floor = q.floor();
    let frac = q - floor;
    let mut n = floor as u64;
    if frac > 0.5 || (frac == 0.5 && n % 2 == 1) {
        n += 1;
    }
    let v = n as f64 * ulp;
    if v > 65504.0 {
        return sign | 0x7C00;
    }
    // Re-encode the quantized value exactly.
    if v < 2f64.powi(-14) {
        // subnormal: v = m * 2^-24
        let m = (v / 2f64.powi(-24)).round() as u16;
        return sign | m;
    }
    let e2 = v.log2().floor() as i32;
    let m = ((v / 2f64.powi(e2) - 1.0) * 1024.0).round() as u16;
    // Rounding up may have pushed the mantissa to 1024 (carry into exponent).
    let (e2, m) = if m == 1024 { (e2 + 1, 0) } else { (e2, m) };
    if e2 > 15 {
        return sign | 0x7C00;
    }
    sign | (((e2 + 15) as u16) << 10) | m
}

proptest! {
    #[test]
    fn conversion_matches_reference_model(x in prop::num::f32::NORMAL | prop::num::f32::SUBNORMAL | prop::num::f32::ZERO) {
        let got = Half::from_f32(x).to_bits();
        let want = reference_f32_to_f16_bits(x);
        prop_assert_eq!(got, want, "x = {} ({:#010x})", x, x.to_bits());
    }

    #[test]
    fn round_trip_is_identity_on_f16_grid(bits in 0u16..0x7C00u16) {
        // Every finite positive half value survives f16 -> f32 -> f16.
        let h = Half::from_bits(bits);
        prop_assert_eq!(Half::from_f32(h.to_f32()).to_bits(), bits);
    }

    #[test]
    fn conversion_is_monotone(a in -70000f32..70000f32, b in -70000f32..70000f32) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let hl = Half::from_f32(lo);
        let hh = Half::from_f32(hi);
        prop_assert!(hl.to_f32() <= hh.to_f32());
    }

    #[test]
    fn conversion_error_within_half_ulp(x in -60000f32..60000f32) {
        let h = Half::from_f32(x);
        let back = h.to_f32();
        // ulp at |x|: 2^(floor(log2 |x|) - 10), at least the subnormal step.
        let ulp = if x == 0.0 {
            2f32.powi(-24)
        } else {
            2f32.powi((x.abs().log2().floor() as i32 - 10).max(-24))
        };
        prop_assert!((back - x).abs() <= ulp * 0.5 + f32::EPSILON,
            "x={x} back={back} ulp={ulp}");
    }

    #[test]
    fn half2_ops_match_scalar_lanes(a0 in -100f32..100f32, a1 in -100f32..100f32,
                                    b0 in -100f32..100f32, b1 in -100f32..100f32) {
        let a = Half2::from_f32s(a0, a1);
        let b = Half2::from_f32s(b0, b1);
        prop_assert_eq!(a.add2(b).lo.to_bits(), hadd(a.lo, b.lo).to_bits());
        prop_assert_eq!(a.add2(b).hi.to_bits(), hadd(a.hi, b.hi).to_bits());
        prop_assert_eq!(a.mul2(b).lo.to_bits(), hmul(a.lo, b.lo).to_bits());
        prop_assert_eq!(a.fma2(b, Half2::ZERO).hi.to_bits(), hfma(a.hi, b.hi, Half::ZERO).to_bits());
        prop_assert_eq!(a.max2(b).lo.to_bits(), hmax(a.lo, b.lo).to_bits());
    }

    #[test]
    fn half8_ops_match_scalar_lanes(vals in prop::collection::vec(-50f32..50f32, 16)) {
        let xs: Vec<Half> = vals[..8].iter().map(|&v| Half::from_f32(v)).collect();
        let ys: Vec<Half> = vals[8..].iter().map(|&v| Half::from_f32(v)).collect();
        let a = Half8::load(&xs, 0);
        let b = Half8::load(&ys, 0);
        let sum = a.add8(b);
        let prod = a.mul8(b);
        for i in 0..8 {
            prop_assert_eq!(sum.lane(i).to_bits(), hadd(xs[i], ys[i]).to_bits());
            prop_assert_eq!(prod.lane(i).to_bits(), hmul(xs[i], ys[i]).to_bits());
        }
    }

    #[test]
    fn fold2_preserves_exact_f32_sum(vals in prop::collection::vec(-8f32..8f32, 8)) {
        // With small-magnitude inputs the half2 tree reduction must agree
        // with the scalar f32 sum of the rounded inputs to within the
        // rounding of each add.
        let xs: Vec<Half> = vals.iter().map(|&v| Half::from_f32(v)).collect();
        let v = Half8::load(&xs, 0);
        let exact: f32 = xs.iter().map(|h| h.to_f32()).sum();
        let folded = v.fold2().hsum_f32();
        prop_assert!((folded - exact).abs() <= 0.25, "folded={folded} exact={exact}");
    }

    #[test]
    fn pad_feature_len_properties(len in 0usize..10_000, width in prop::sample::select(vec![2usize, 4, 8])) {
        let padded = slice::pad_feature_len(len, width);
        prop_assert!(padded >= len);
        prop_assert!(padded < len + width);
        prop_assert_eq!(padded % width, 0);
    }

    #[test]
    fn intrinsic_add_commutative_and_mul_distributes_sign(a in -1000f32..1000f32, b in -1000f32..1000f32) {
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        prop_assert_eq!(hadd(x, y).to_bits(), hadd(y, x).to_bits());
        prop_assert_eq!(hmul(-x, y).to_bits(), (-hmul(x, y)).to_bits());
    }

    #[test]
    fn bulk_conversion_round_trips(vals in prop::collection::vec(-60000f32..60000f32, 0..64)) {
        let hs = slice::f32_slice_to_half(&vals);
        let back = slice::half_slice_to_f32(&hs);
        let again = slice::f32_slice_to_half(&back);
        prop_assert_eq!(
            hs.iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
            again.iter().map(|h| h.to_bits()).collect::<Vec<_>>()
        );
    }
}
