//! Criterion bench of the full edge-softmax pipeline (Eq. 1) — shadow vs
//! AMP exp — at host wall-clock granularity.

use criterion::{criterion_group, criterion_main, Criterion};
use halfgnn_bench::experiments::SEED;
use halfgnn_graph::datasets::Dataset;
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_kernels::common::Reduce;
use halfgnn_kernels::edge_ops;
use halfgnn_kernels::halfgnn_spmm::edge_reduce;
use halfgnn_sim::DeviceConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_softmax(c: &mut Criterion) {
    let dev = DeviceConfig::a100_like();
    let data = Dataset::amazon().load(SEED);
    let coo = &data.coo;
    let mut rng = StdRng::seed_from_u64(3);
    let e =
        f32_slice_to_half(&(0..coo.nnz()).map(|_| rng.gen_range(-8.0f32..8.0)).collect::<Vec<_>>());
    let mut group = c.benchmark_group("edge_softmax_amazon");
    group.sample_size(10);
    for (name, shadow) in [("shadow", true), ("amp", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (m, _) = edge_reduce(&dev, coo, &e, Reduce::Max);
                let (num, _) = edge_ops::sub_row_exp(&dev, coo, &e, &m, shadow);
                let (z, _) = edge_reduce(&dev, coo, &num, Reduce::Sum);
                edge_ops::div_row(&dev, coo, &num, &z)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_softmax);
criterion_main!(benches);
