//! Criterion bench of one full training epoch per system (Figs. 7-8's
//! subject, at host wall-clock granularity).

use criterion::{criterion_group, criterion_main, Criterion};
use halfgnn_bench::experiments::SEED;
use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

fn bench_training(c: &mut Criterion) {
    let data = Dataset::cora().load(SEED);
    let mut group = c.benchmark_group("train_epoch_cora_gcn");
    group.sample_size(10);
    for (name, precision) in [
        ("float", PrecisionMode::Float),
        ("halfnaive", PrecisionMode::HalfNaive),
        ("halfgnn", PrecisionMode::HalfGnn),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                train(
                    &data,
                    &TrainConfig {
                        model: ModelKind::Gcn,
                        precision,
                        epochs: 1,
                        ..TrainConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
