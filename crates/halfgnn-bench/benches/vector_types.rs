//! Host-side microbenchmarks of the software half-precision types: the
//! conversion and arithmetic primitives everything else is built on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use halfgnn_half::prelude::*;
use halfgnn_half::slice;

fn bench_vectors(c: &mut Criterion) {
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
    let hs = slice::f32_slice_to_half(&xs);

    let mut group = c.benchmark_group("half_primitives_4096");
    group.bench_function("f32_to_half", |b| b.iter(|| slice::f32_slice_to_half(black_box(&xs))));
    group.bench_function("half_to_f32", |b| b.iter(|| slice::half_slice_to_f32(black_box(&hs))));
    group.bench_function("scalar_hfma_chain", |b| {
        b.iter(|| {
            let mut acc = Half::ZERO;
            for &h in black_box(&hs) {
                acc = hfma(h, Half::ONE, acc);
            }
            acc
        })
    });
    group.bench_function("half2_fma_chain", |b| {
        b.iter(|| {
            let mut acc = Half2::ZERO;
            for pair in black_box(&hs).chunks_exact(2) {
                acc = Half2::new(pair[0], pair[1]).fma2(Half2::splat(Half::ONE), acc);
            }
            acc
        })
    });
    group.bench_function("half8_load_fold", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            let mut i = 0;
            while i + 8 <= hs.len() {
                acc += Half8::load(black_box(&hs), i).hsum_f32();
                i += 8;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vectors);
criterion_main!(benches);
