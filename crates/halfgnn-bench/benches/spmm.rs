//! Criterion benches for the SpMM kernels (host wall-clock of the
//! simulated kernels; modeled GPU time is reported by `repro fig9/fig13`).

use criterion::{criterion_group, criterion_main, Criterion};
use halfgnn_bench::experiments::{random_edge_weights_h, random_features_h, SEED};
use halfgnn_graph::datasets::Dataset;
use halfgnn_kernels::baseline::cusparse;
use halfgnn_kernels::common::{EdgeWeights, ScalePlacement, WriteStrategy};
use halfgnn_kernels::halfgnn_spmm::{spmm, SpmmConfig};
use halfgnn_sim::DeviceConfig;

fn bench_spmm(c: &mut Criterion) {
    let dev = DeviceConfig::a100_like();
    let data = Dataset::amazon().load(SEED);
    let f = 64;
    let w = random_edge_weights_h(&data, 3);
    let x = random_features_h(&data, f, 4);
    let mut group = c.benchmark_group("spmm_f64feat_amazon");
    group.sample_size(10);
    let base = SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
    group.bench_function("halfgnn_staged", |b| {
        b.iter(|| spmm(&dev, &data.coo, EdgeWeights::Values(&w), &x, f, None, &base))
    });
    group.bench_function("halfgnn_atomic", |b| {
        b.iter(|| {
            spmm(
                &dev,
                &data.coo,
                EdgeWeights::Values(&w),
                &x,
                f,
                None,
                &SpmmConfig { writes: WriteStrategy::Atomic, ..base },
            )
        })
    });
    group.bench_function("cusparse_half", |b| {
        b.iter(|| cusparse::spmm_half(&dev, &data.coo, EdgeWeights::Values(&w), &x, f, None))
    });
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
