//! Criterion benches for the SDDMM vector-width variants (Fig. 12's
//! subject) and the DGL baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use halfgnn_bench::experiments::{random_features_h, SEED};
use halfgnn_graph::datasets::Dataset;
use halfgnn_kernels::baseline::dgl_sddmm;
use halfgnn_kernels::common::VectorWidth;
use halfgnn_kernels::halfgnn_sddmm::sddmm;
use halfgnn_sim::DeviceConfig;

fn bench_sddmm(c: &mut Criterion) {
    let dev = DeviceConfig::a100_like();
    let data = Dataset::amazon().load(SEED);
    let f = 64;
    let u = random_features_h(&data, f, 5);
    let v = random_features_h(&data, f, 6);
    let mut group = c.benchmark_group("sddmm_f64feat_amazon");
    group.sample_size(10);
    for width in [VectorWidth::Half2, VectorWidth::Half4, VectorWidth::Half8] {
        let name = format!("halfgnn_{width:?}");
        group.bench_function(&name, |b| b.iter(|| sddmm(&dev, &data.coo, &u, &v, f, width)));
    }
    group.bench_function("dgl_half", |b| {
        b.iter(|| dgl_sddmm::sddmm_half(&dev, &data.coo, &u, &v, f))
    });
    group.finish();
}

criterion_group!(benches, bench_sddmm);
criterion_main!(benches);
