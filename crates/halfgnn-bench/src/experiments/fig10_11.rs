//! Figs. 10 & 11 — NCU-style utilization counters: HalfGNN kernels achieve
//! much higher memory-bandwidth (and SM) utilization than the DGL/cuSPARSE
//! baselines.

use crate::experiments::{
    perf_datasets, random_edge_weights_f, random_edge_weights_h, random_features_f,
    random_features_h, SEED,
};
use crate::Table;
use halfgnn_kernels::baseline::{cusparse, dgl_sddmm};
use halfgnn_kernels::common::{EdgeWeights, ScalePlacement, VectorWidth};
use halfgnn_kernels::{halfgnn_sddmm, halfgnn_spmm};
use halfgnn_sim::DeviceConfig;

/// Fig. 10: SpMM memory-BW% and SM% for HalfGNN / cuSPARSE-half /
/// cuSPARSE-float, averaged over the performance datasets.
pub fn fig10(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let f = 64;
    let mut t = Table::new(
        "Fig 10 — SpMM utilization (%, mean over datasets)",
        &["system", "mem BW %", "SM %"],
    );
    let mut acc = [[0.0f64; 2]; 3];
    let mut n = 0usize;
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let wh = random_edge_weights_h(&data, 3);
        let wf = random_edge_weights_f(&data, 3);
        let xh = random_features_h(&data, f, 4);
        let xf = random_features_f(&data, f, 4);
        let (_, ours) = halfgnn_spmm::spmm(
            &dev,
            &data.coo,
            EdgeWeights::Values(&wh),
            &xh,
            f,
            None,
            &halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let (_, half) =
            cusparse::spmm_half(&dev, &data.coo, EdgeWeights::Values(&wh), &xh, f, None);
        let (_, float) = cusparse::spmm_float(
            &dev,
            &data.coo,
            cusparse::EdgeWeightsF32::Values(&wf),
            &xf,
            f,
            None,
        );
        for (i, s) in [&ours, &half, &float].iter().enumerate() {
            acc[i][0] += s.mem_bw_utilization;
            acc[i][1] += s.sm_utilization;
        }
        n += 1;
    }
    for (i, name) in
        ["HalfGNN", "cuSPARSE-half (DGL-half)", "cuSPARSE-float (DGL-float)"].iter().enumerate()
    {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", acc[i][0] / n as f64),
            format!("{:.1}", acc[i][1] / n as f64),
        ]);
    }
    t.note(
        "paper: mem BW 80.9 / 20.2 / 52.0 %, SM 72.3 / 21.6 / 50.8 % — the ordering is the claim.",
    );
    t
}

/// Fig. 11: SDDMM memory-BW% for HalfGNN / DGL-half / DGL-float.
pub fn fig11(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let f = 64;
    let mut t = Table::new(
        "Fig 11 — SDDMM memory bandwidth utilization (%, mean over datasets)",
        &["system", "mem BW %"],
    );
    let mut acc = [0.0f64; 3];
    let mut n = 0usize;
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let uh = random_features_h(&data, f, 5);
        let vh = random_features_h(&data, f, 6);
        let uf = random_features_f(&data, f, 5);
        let vf = random_features_f(&data, f, 6);
        let (_, ours) = halfgnn_sddmm::sddmm(&dev, &data.coo, &uh, &vh, f, VectorWidth::Half8);
        let (_, half) = dgl_sddmm::sddmm_half(&dev, &data.coo, &uh, &vh, f);
        let (_, float) = dgl_sddmm::sddmm_float(&dev, &data.coo, &uf, &vf, f);
        acc[0] += ours.mem_bw_utilization;
        acc[1] += half.mem_bw_utilization;
        acc[2] += float.mem_bw_utilization;
        n += 1;
    }
    for (i, name) in ["HalfGNN (half8)", "DGL-half", "DGL-float"].iter().enumerate() {
        t.row(vec![name.to_string(), format!("{:.1}", acc[i] / n as f64)]);
    }
    t.note("paper: 83.7 / 50.9 / 50.6 % — HalfGNN well above both baselines, baselines similar.");
    t
}
