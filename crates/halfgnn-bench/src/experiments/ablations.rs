//! Ablations the paper describes in prose:
//!
//! * §6.1.1 "Overflow Protection is the Key": replace the discretized
//!   reduction with the usual (post-reduction-scaled) one and the DGL-half
//!   accuracy collapse returns.
//! * §5.2.2: GIN's λ — with λ = 1 the combine addition overflows on hub
//!   rows; λ = 0.1 is safe.

use crate::experiments::{fig1_datasets, SEED};
use crate::Table;
use halfgnn_nn::models::GcnNorm;
use halfgnn_nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

/// §6.1.1: discretized vs usual reduction inside the HalfGNN system.
pub fn discretize(quick: bool) -> Table {
    let epochs = if quick { 8 } else { 30 };
    let mut t = Table::new(
        "Ablation §6.1.1 — discretized vs post-reduction scaling in HalfGNN",
        &["dataset", "model", "discretized acc", "post-reduction acc", "post NaN epoch"],
    );
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for model in [ModelKind::Gcn, ModelKind::Gin] {
            let base = TrainConfig { model, epochs, ..TrainConfig::default() };
            let disc =
                train(&data, &TrainConfig { precision: PrecisionMode::HalfGnn, ..base.clone() });
            let post = train(
                &data,
                &TrainConfig { precision: PrecisionMode::HalfGnnNoDiscretize, ..base.clone() },
            );
            t.row(vec![
                data.spec.name.to_string(),
                format!("{model:?}"),
                format!("{:.3}", disc.final_train_accuracy),
                format!("{:.3}", post.final_train_accuracy),
                post.nan_epoch.map_or("-".into(), |e| e.to_string()),
            ]);
        }
    }
    t.note("replacing discretized reduction with the usual one reproduces the DGL-half-like abnormal accuracy (§6.1.1).");
    t
}

/// §3.1.3: GCN degree-norm placement × kernel system. Right overflows in
/// the forward pass under naive half; left is forward-safe but its
/// backward applies the norm after the reduction and overflows there;
/// HalfGNN's discretized kernels are safe everywhere.
pub fn gcn_norms(quick: bool) -> Table {
    let epochs = if quick { 6 } else { 20 };
    let mut t = Table::new(
        "Ablation §3.1.3 — GCN degree-norm placement under half precision",
        &["dataset", "norm", "system", "acc", "NaN epoch"],
    );
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for norm in [GcnNorm::Right, GcnNorm::Left, GcnNorm::Both] {
            for (name, precision) in
                [("DGL-half", PrecisionMode::HalfNaive), ("HalfGNN", PrecisionMode::HalfGnn)]
            {
                let cfg = TrainConfig {
                    model: ModelKind::Gcn,
                    precision,
                    epochs,
                    gcn_norm: norm,
                    ..TrainConfig::default()
                };
                let r = train(&data, &cfg);
                t.row(vec![
                    data.spec.name.to_string(),
                    format!("{norm:?}"),
                    name.to_string(),
                    format!("{:.3}", r.final_train_accuracy),
                    r.nan_epoch.map_or("-".into(), |e| e.to_string()),
                ]);
            }
        }
    }
    t.note("right: naive-half NaNs in the forward (epoch 0). left: the forward is safe as §3.1.3 predicts; its backward applies the norm after the reduction and overflows for large gradients (demonstrated at kernel level in halfgnn-nn's gcn tests) but training gradients at this scale stay small enough. both: the sqrt scaling suffices at this reduced scale (at the paper's full scale Eq. 2 still overflows).");
    t
}

/// §4.1.1 / §5.2: the discretization unit (edges per warp) trades
/// coalescing against overflow headroom. The paper mandates ≥ 64 edges per
/// warp for full 128-byte edge loads; the batch must also stay small
/// enough that `batch x max|w x| < 65504`.
pub fn batch_size(quick: bool) -> Table {
    use halfgnn_kernels::common::{EdgeWeights, ScalePlacement, Tiling};
    use halfgnn_kernels::halfgnn_spmm::{spmm, SpmmConfig};
    use halfgnn_sim::DeviceConfig;

    let dev = DeviceConfig::a100_like();
    let mut t = Table::new(
        "Ablation §4.1.1 — edges per warp (the discretization unit)",
        &["edges/warp", "time (us)", "vs 64", "overflow headroom (|x| <=)"],
    );
    let ds = if quick {
        crate::experiments::perf_datasets(true)[2]
    } else {
        halfgnn_graph::datasets::Dataset::hollywood09()
    };
    let data = ds.load(SEED);
    let f = 64;
    let x = crate::experiments::random_features_h(&data, f, 4);
    let w = crate::experiments::random_edge_weights_h(&data, 3);
    // Reference time at the paper's 64-edge batches.
    let base_time = {
        let cfg = SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        spmm(&dev, &data.coo, EdgeWeights::Values(&w), &x, f, None, &cfg).1.time_us
    };
    for &epw in &[16usize, 32, 64, 128, 256] {
        let cfg = SpmmConfig {
            scaling: ScalePlacement::None,
            tiling: Tiling { edges_per_warp: epw, warps_per_cta: 4 },
            ..Default::default()
        };
        let (_, s) = spmm(&dev, &data.coo, EdgeWeights::Values(&w), &x, f, None, &cfg);
        // A batch of `epw` same-sign products of magnitude m overflows at
        // m > 65504 / epw: the per-batch safety envelope.
        t.row(vec![
            epw.to_string(),
            format!("{:.1}", s.time_us),
            format!("{:.2}x", s.time_us / base_time),
            format!("{:.0}", 65504.0 / epw as f64),
        ]);
    }
    t.note("64 edges/warp is the paper's sweet spot: full 128-byte edge loads with a ~1000x overflow envelope per batch.");
    t
}

/// §3.2 / §5.4: HalfGNN's edge-parallel recommendation, quantified — the
/// same discretized + staged design in both computation paradigms.
pub fn paradigms(quick: bool) -> Table {
    use halfgnn_kernels::common::{EdgeWeights, ScalePlacement};
    use halfgnn_kernels::halfgnn_spmm::{spmm, spmm_vertex_parallel, SpmmConfig};
    use halfgnn_sim::DeviceConfig;

    let dev = DeviceConfig::a100_like();
    let f = 64;
    let mut t = Table::new(
        "Ablation §5.4 — HalfGNN edge-parallel vs vertex-parallel SpMM",
        &["dataset", "edge-parallel (us)", "vertex-parallel (us)", "edge/vertex"],
    );
    let mut ratios = Vec::new();
    for ds in crate::experiments::perf_datasets(quick) {
        let data = ds.load(SEED);
        let x = crate::experiments::random_features_h(&data, f, 4);
        let w = crate::experiments::random_edge_weights_h(&data, 3);
        let (_, edge) = spmm(
            &dev,
            &data.coo,
            EdgeWeights::Values(&w),
            &x,
            f,
            None,
            &SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
        );
        let (_, vertex) = spmm_vertex_parallel(
            &dev,
            &data.adj,
            EdgeWeights::Values(&w),
            &x,
            f,
            None,
            ScalePlacement::None,
        );
        let ratio = vertex.time_us / edge.time_us;
        ratios.push(ratio);
        t.row(vec![
            data.spec.name.to_string(),
            format!("{:.1}", edge.time_us),
            format!("{:.1}", vertex.time_us),
            format!("{ratio:.2}x"),
        ]);
    }
    t.note(format!(
        "geomean vertex/edge = {:.2}x — the discretized design transfers to vertex-parallel (§5.4), and edge-parallel stays the best default (§3.2)",
        crate::geomean(&ratios)
    ));
    t
}

/// §5.2.2: GIN λ sweep.
pub fn gin_lambda(quick: bool) -> Table {
    let epochs = if quick { 8 } else { 30 };
    let mut t = Table::new(
        "Ablation §5.2.2 — GIN aggregation scale λ",
        &["dataset", "lambda", "acc", "NaN epoch"],
    );
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for &lambda in &[1.0f32, 0.5, 0.1] {
            let cfg = TrainConfig {
                model: ModelKind::Gin,
                precision: PrecisionMode::HalfGnn,
                epochs,
                gin_lambda: lambda,
                ..TrainConfig::default()
            };
            let r = train(&data, &cfg);
            t.row(vec![
                data.spec.name.to_string(),
                format!("{lambda}"),
                format!("{:.3}", r.final_train_accuracy),
                r.nan_epoch.map_or("-".into(), |e| e.to_string()),
            ]);
        }
    }
    t.note("the paper fixes lambda = 0.1 (\"worked fine for all our robust testing\").");
    t
}
