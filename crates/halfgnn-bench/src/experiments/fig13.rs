//! Fig. 13 — SpMM micro-benchmark: removing atomic writes (staging buffer
//! + follow-up kernel) vs keeping them, everything else equal.

use crate::experiments::{perf_datasets, random_edge_weights_h, random_features_h, SEED};
use crate::{fx, geomean, Table};
use halfgnn_kernels::common::{EdgeWeights, ScalePlacement, WriteStrategy};
use halfgnn_kernels::halfgnn_spmm::{spmm, SpmmConfig};
use halfgnn_sim::DeviceConfig;

/// Non-atomic speedup over the atomic variant, F = 64.
pub fn run(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let f = 64;
    let mut t = Table::new(
        "Fig 13 — SpMM speedup from removing atomic writes",
        &["dataset", "atomic (us)", "non-atomic (us)", "speedup"],
    );
    let mut all = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let w = random_edge_weights_h(&data, 9);
        let x = random_features_h(&data, f, 10);
        let base = SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
        let (_, atomic) = spmm(
            &dev,
            &data.coo,
            EdgeWeights::Values(&w),
            &x,
            f,
            None,
            &SpmmConfig { writes: WriteStrategy::Atomic, ..base },
        );
        let (_, staged) = spmm(&dev, &data.coo, EdgeWeights::Values(&w), &x, f, None, &base);
        let s = atomic.time_us / staged.time_us;
        all.push(s);
        t.row(vec![
            data.spec.name.to_string(),
            format!("{:.1}", atomic.time_us),
            format!("{:.1}", staged.time_us),
            fx(s),
        ]);
    }
    t.note(format!(
        "geomean = {}; half atomics are CAS loops that serialize on hub rows (§5.2.3)",
        fx(geomean(&all))
    ));
    t
}
