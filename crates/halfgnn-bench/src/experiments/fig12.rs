//! Fig. 12 — SDDMM micro-benchmark: half8 vs half2 data-load vectors
//! (paper: 1.67× average, up to ~3×).

use crate::experiments::{perf_datasets, random_features_h, SEED};
use crate::{fx, geomean, Table};
use halfgnn_kernels::common::VectorWidth;
use halfgnn_kernels::halfgnn_sddmm::sddmm;
use halfgnn_sim::DeviceConfig;

/// half8 speedup over half2 for F ∈ {32, 64}.
pub fn run(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let mut t =
        Table::new("Fig 12 — SDDMM: half8 speedup over half2", &["dataset", "F=32", "F=64"]);
    let mut all = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let mut cells = vec![data.spec.name.to_string()];
        for &f in &[32usize, 64] {
            let u = random_features_h(&data, f, 7);
            let v = random_features_h(&data, f, 8);
            let (_, h2) = sddmm(&dev, &data.coo, &u, &v, f, VectorWidth::Half2);
            let (_, h8) = sddmm(&dev, &data.coo, &u, &v, f, VectorWidth::Half8);
            let s = h2.time_us / h8.time_us;
            all.push(s);
            cells.push(fx(s));
        }
        t.row(cells);
    }
    t.note(format!("geomean = {} (paper: 1.67x average)", fx(geomean(&all))));
    t
}
