//! Fig. 14 — generality: applying the HalfGNN optimizations (half2 loads,
//! mirroring with the alignment fix, non-atomic writes) to Huang et al.'s
//! vertex-parallel SpMM (paper: 1.79× average).

use crate::experiments::{perf_datasets, random_features_f, random_features_h, SEED};
use crate::{fx, geomean, Table};
use halfgnn_kernels::baseline::cusparse::EdgeWeightsF32;
use halfgnn_kernels::common::EdgeWeights;
use halfgnn_kernels::huang;
use halfgnn_sim::DeviceConfig;

/// Huang-half2 speedup over Huang-float, F = 64.
pub fn run(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let f = 64;
    let mut t = Table::new(
        "Fig 14 — Huang et al. SpMM: half2 adaptation vs float original",
        &["dataset", "float (us)", "half2 (us)", "speedup"],
    );
    let mut all = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let xf = random_features_f(&data, f, 11);
        let xh = random_features_h(&data, f, 11);
        let (_, float) = huang::spmm_float(&dev, &data.adj, EdgeWeightsF32::Ones, &xf, f);
        let (_, half2) = huang::spmm_half2(&dev, &data.adj, EdgeWeights::Ones, &xh, f);
        let s = float.time_us / half2.time_us;
        all.push(s);
        t.row(vec![
            data.spec.name.to_string(),
            format!("{:.1}", float.time_us),
            format!("{:.1}", half2.time_us),
            fx(s),
        ]);
    }
    t.note(format!(
        "geomean = {} (paper: 1.79x average) — the 32-neighbor grouping is kept, so edge loads stay 64 B as in §6.3.3",
        fx(geomean(&all))
    ));
    t
}
