//! Figs. 7 & 8 — end-to-end training speedup of HalfGNN over DGL-half
//! (Fig. 7) and DGL-float (Fig. 8), per dataset and model, |F| hidden 64.

use crate::experiments::{perf_datasets, SEED};
use crate::{fx, geomean, Table};
use halfgnn_nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

/// Per-(dataset, model) epoch times for the three systems.
pub struct EpochTimes {
    rows: Vec<(String, ModelKind, f64, f64, f64)>, // (dataset, model, float, naive, ours)
}

/// Measure one modeled epoch per configuration (kernel sequences are
/// value-independent, so one epoch represents them all).
pub fn measure(quick: bool) -> EpochTimes {
    let mut rows = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Gin] {
            let base = TrainConfig { model, epochs: 1, ..TrainConfig::default() };
            let tf = train(&data, &TrainConfig { precision: PrecisionMode::Float, ..base.clone() })
                .epoch_time_us;
            let tn =
                train(&data, &TrainConfig { precision: PrecisionMode::HalfNaive, ..base.clone() })
                    .epoch_time_us;
            let th =
                train(&data, &TrainConfig { precision: PrecisionMode::HalfGnn, ..base.clone() })
                    .epoch_time_us;
            rows.push((data.spec.name.to_string(), model, tf, tn, th));
        }
    }
    EpochTimes { rows }
}

fn speedup_table(times: &EpochTimes, title: &str, baseline_float: bool, paper: &str) -> Table {
    let mut t = Table::new(title, &["dataset", "GCN", "GAT", "GIN"]);
    let mut per_model: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    // Group rows by dataset (3 consecutive model entries).
    for chunk in times.rows.chunks(3) {
        let mut cells = vec![chunk[0].0.clone()];
        for (i, (_, _, tf, tn, th)) in chunk.iter().enumerate() {
            let base = if baseline_float { *tf } else { *tn };
            let s = base / th;
            per_model[i].push(s);
            cells.push(fx(s));
        }
        t.row(cells);
    }
    t.row(vec![
        "**geomean**".into(),
        fx(geomean(&per_model[0])),
        fx(geomean(&per_model[1])),
        fx(geomean(&per_model[2])),
    ]);
    t.note(paper.to_string());
    t
}

/// Fig. 7: speedup over DGL-half.
pub fn fig7(times: &EpochTimes) -> Table {
    speedup_table(
        times,
        "Fig 7 — HalfGNN training speedup over DGL-half (F=64)",
        false,
        "paper: 2.44x / 3.84x / 2.42x average for GCN / GAT / GIN",
    )
}

/// Fig. 8: speedup over DGL-float.
pub fn fig8(times: &EpochTimes) -> Table {
    speedup_table(
        times,
        "Fig 8 — HalfGNN training speedup over DGL-float (F=64)",
        true,
        "paper: 1.85x / 3.55x / 1.78x average for GCN / GAT / GIN",
    )
}

/// Convenience wrapper for the `repro` binary: measure once, print both.
pub fn run(quick: bool) -> Vec<Table> {
    let times = measure(quick);
    vec![fig7(&times), fig8(&times)]
}
