//! §3.1.2 — the data-conversion tax of naive mixed precision: count the
//! tensor-level h2f/f2h conversions per training epoch with the AMP
//! promotion policy (DGL-half) vs HalfGNN's shadow APIs.

use crate::experiments::{fig1_datasets, SEED};
use crate::Table;
use halfgnn_nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

/// Conversion kernels and converted elements per epoch, per model.
pub fn run(_quick: bool) -> Table {
    let mut t = Table::new(
        "§3.1.2 — dtype conversions per training epoch",
        &["dataset", "model", "system", "conversion kernels", "elements converted"],
    );
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Gin] {
            for (name, precision) in [
                ("DGL-half (AMP)", PrecisionMode::HalfNaive),
                ("HalfGNN (shadow)", PrecisionMode::HalfGnn),
            ] {
                let cfg = TrainConfig { model, precision, epochs: 1, ..TrainConfig::default() };
                let r = train(&data, &cfg);
                t.row(vec![
                    data.spec.name.to_string(),
                    format!("{model:?}"),
                    name.to_string(),
                    r.conversions_per_epoch.to_string(),
                    r.converted_elems_per_epoch.to_string(),
                ]);
            }
        }
    }
    t.note("GAT shows the biggest gap: AMP's promoted exp materializes float edge tensors every step (§3.1.2); both systems keep weight casts and the f32 loss (Micikevicius et al.).");
    t
}
