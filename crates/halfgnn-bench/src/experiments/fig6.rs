//! Fig. 6 — training memory: HalfGNN vs DGL-float (the paper reports a
//! 2.67× average saving across the three models).

use crate::experiments::{perf_datasets, SEED};
use crate::{geomean, Table};
use halfgnn_nn::trainer::{model_memory, ModelKind, PrecisionMode, TrainConfig};

/// Analytic peak-memory comparison per dataset and model.
pub fn run(quick: bool) -> Table {
    let mut t = Table::new(
        "Fig 6 — training memory: DGL-float vs HalfGNN (MiB)",
        &["dataset", "model", "dgl-float", "halfgnn", "saving"],
    );
    let mut ratios = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Gin] {
            let base = TrainConfig { model, ..TrainConfig::default() };
            let f = model_memory(
                &data,
                &TrainConfig { precision: PrecisionMode::Float, ..base.clone() },
                data.spec.classes,
            );
            let h = model_memory(
                &data,
                &TrainConfig { precision: PrecisionMode::HalfGnn, ..base.clone() },
                data.spec.classes.div_ceil(2) * 2,
            );
            let ratio = f.peak() as f64 / h.peak() as f64;
            ratios.push(ratio);
            t.row(vec![
                data.spec.name.to_string(),
                format!("{model:?}"),
                format!("{:.1}", f.peak_mib()),
                format!("{:.1}", h.peak_mib()),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    t.note(format!(
        "geomean saving = {:.2}x (paper: 2.67x average; halves come from FP16 state tensors, the rest from DGL framework overhead)",
        geomean(&ratios)
    ));
    t
}
