//! Fig. 1 — the motivating analysis: (a) cuSPARSE half SpMM is *slower*
//! than float, (b) DGL half SDDMM is no faster than float, (c) DGL-half
//! training collapses to NaN for GCN and GIN.

use crate::experiments::{fig1_datasets, random_features_f, random_features_h, SEED};
use crate::{fx, geomean, us, Table};
use halfgnn_kernels::baseline::cusparse::{self, EdgeWeightsF32};
use halfgnn_kernels::baseline::dgl_sddmm;
use halfgnn_kernels::common::EdgeWeights;
use halfgnn_nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};
use halfgnn_sim::DeviceConfig;

/// Fig. 1a: cuSPARSE SpMM runtime, half vs float, across feature lengths.
pub fn fig1a(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let feats: &[usize] = if quick { &[32, 64] } else { &[32, 64, 128, 256] };
    let mut t = Table::new(
        "Fig 1a — cuSPARSE SpMM: half is slower than float",
        &["dataset", "|F|", "float (us)", "half (us)", "half/float"],
    );
    let mut ratios = Vec::new();
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for &f in feats {
            let xf = random_features_f(&data, f, 7);
            let xh = random_features_h(&data, f, 7);
            let (_, sf) = cusparse::spmm_float(&dev, &data.coo, EdgeWeightsF32::Ones, &xf, f, None);
            let (_, sh) = cusparse::spmm_half(&dev, &data.coo, EdgeWeights::Ones, &xh, f, None);
            let ratio = sh.time_us / sf.time_us;
            ratios.push(ratio);
            t.row(vec![
                data.spec.name.to_string(),
                f.to_string(),
                us(sf.time_us),
                us(sh.time_us),
                fx(ratio),
            ]);
        }
    }
    t.note(format!(
        "geomean half/float = {} (> 1 means half is slower — the paper's Fig 1a shape)",
        fx(geomean(&ratios))
    ));
    t
}

/// Fig. 1b: DGL SDDMM runtime, half vs float.
pub fn fig1b(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let feats: &[usize] = if quick { &[32, 64] } else { &[32, 64, 128, 256] };
    let mut t = Table::new(
        "Fig 1b — DGL SDDMM: half gives no speedup over float",
        &["dataset", "|F|", "float (us)", "half (us)", "half/float"],
    );
    let mut ratios = Vec::new();
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for &f in feats {
            let uf = random_features_f(&data, f, 8);
            let vf = random_features_f(&data, f, 9);
            let uh = random_features_h(&data, f, 8);
            let vh = random_features_h(&data, f, 9);
            let (_, sf) = dgl_sddmm::sddmm_float(&dev, &data.coo, &uf, &vf, f);
            let (_, sh) = dgl_sddmm::sddmm_half(&dev, &data.coo, &uh, &vh, f);
            let ratio = sh.time_us / sf.time_us;
            ratios.push(ratio);
            t.row(vec![
                data.spec.name.to_string(),
                f.to_string(),
                us(sf.time_us),
                us(sh.time_us),
                fx(ratio),
            ]);
        }
    }
    t.note(format!(
        "geomean half/float = {} (~1 means no benefit — the paper's Fig 1b shape)",
        fx(geomean(&ratios))
    ));
    t
}

/// Fig. 1c: DGL-half training accuracy collapses for GCN/GIN (NaN loss).
pub fn fig1c(quick: bool) -> Table {
    let epochs = if quick { 8 } else { 30 };
    let mut t = Table::new(
        "Fig 1c — DGL-half accuracy collapse on GCN/GIN",
        &["dataset", "model", "float acc", "dgl-half acc", "dgl-half NaN epoch"],
    );
    for ds in fig1_datasets() {
        let data = ds.load(SEED);
        for model in [ModelKind::Gcn, ModelKind::Gin] {
            let base = TrainConfig { model, epochs, ..TrainConfig::default() };
            let f = train(&data, &TrainConfig { precision: PrecisionMode::Float, ..base.clone() });
            let h =
                train(&data, &TrainConfig { precision: PrecisionMode::HalfNaive, ..base.clone() });
            t.row(vec![
                data.spec.name.to_string(),
                format!("{model:?}"),
                format!("{:.3}", f.final_train_accuracy),
                format!("{:.3}", h.final_train_accuracy),
                h.nan_epoch.map_or("-".into(), |e| e.to_string()),
            ]);
        }
    }
    t.note("DGL-half loss becomes NaN within the first epochs (value overflow in SpMM reduction, §3.1.3).");
    t
}
