//! One module per paper experiment. Each `run(quick)` regenerates a table
//! or figure series; `quick` trims datasets/epochs for CI-speed smoke runs
//! while the full mode covers everything the paper plots.

pub mod ablations;
pub mod conversions;
pub mod fig1;
pub mod fig10_11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod table1;

use halfgnn_graph::datasets::{Dataset, LoadedDataset};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::Half;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed every experiment derives data from (reported in EXPERIMENTS.md).
pub const SEED: u64 = 42;

/// Performance datasets (G4–G16), or a representative skewed/flat/dense
/// triple in quick mode.
pub fn perf_datasets(quick: bool) -> Vec<Dataset> {
    if quick {
        vec![Dataset::amazon(), Dataset::roadnet_ca(), Dataset::hollywood09()]
    } else {
        Dataset::performance()
    }
}

/// The two mid-size labeled datasets Figs. 1a–1c use.
pub fn fig1_datasets() -> Vec<Dataset> {
    vec![Dataset::ogb_product(), Dataset::reddit()]
}

/// Random half-precision vertex features, `n × f`, magnitude ≤ 0.5.
pub fn random_features_h(data: &LoadedDataset, f: usize, seed: u64) -> Vec<Half> {
    f32_slice_to_half(&random_features_f(data, f, seed))
}

/// Random f32 vertex features, `n × f`.
pub fn random_features_f(data: &LoadedDataset, f: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..data.num_vertices() * f).map(|_| rng.gen_range(-0.5..0.5)).collect()
}

/// Random half edge weights, `|E|`.
pub fn random_edge_weights_h(data: &LoadedDataset, seed: u64) -> Vec<Half> {
    f32_slice_to_half(&random_edge_weights_f(data, seed))
}

/// Random f32 edge weights.
pub fn random_edge_weights_f(data: &LoadedDataset, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..data.num_edges()).map(|_| rng.gen_range(-1.0..1.0)).collect()
}
