//! Fig. 9 — kernel-level speedups of HalfGNN over DGL-half: SpMMve vs
//! cuSPARSE-half (paper: 22.89× average) and SDDMM vs DGL-half SDDMM
//! (paper: 7.12× average), feature sizes 32 and 64.

use crate::experiments::{perf_datasets, random_edge_weights_h, random_features_h, SEED};
use crate::{fx, geomean, Table};
use halfgnn_kernels::baseline::{cusparse, dgl_sddmm};
use halfgnn_kernels::common::{EdgeWeights, VectorWidth};
use halfgnn_kernels::{halfgnn_sddmm, halfgnn_spmm};
use halfgnn_sim::DeviceConfig;

/// Kernel speedups for both kernels and both feature sizes.
pub fn run(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let mut t = Table::new(
        "Fig 9 — kernel speedup over DGL-half kernels",
        &["dataset", "SpMM F=32", "SpMM F=64", "SDDMM F=32", "SDDMM F=64"],
    );
    let mut spmm_all = Vec::new();
    let mut sddmm_all = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let w = random_edge_weights_h(&data, 3);
        let mut cells = vec![data.spec.name.to_string()];
        for &f in &[32usize, 64] {
            let x = random_features_h(&data, f, 4);
            let (_, base) =
                cusparse::spmm_half(&dev, &data.coo, EdgeWeights::Values(&w), &x, f, None);
            let (_, ours) = halfgnn_spmm::spmm(
                &dev,
                &data.coo,
                EdgeWeights::Values(&w),
                &x,
                f,
                None,
                &halfgnn_spmm::SpmmConfig {
                    scaling: halfgnn_kernels::common::ScalePlacement::None,
                    ..Default::default()
                },
            );
            let s = base.time_us / ours.time_us;
            spmm_all.push(s);
            cells.push(fx(s));
        }
        for &f in &[32usize, 64] {
            let u = random_features_h(&data, f, 5);
            let v = random_features_h(&data, f, 6);
            let (_, base) = dgl_sddmm::sddmm_half(&dev, &data.coo, &u, &v, f);
            let (_, ours) = halfgnn_sddmm::sddmm(&dev, &data.coo, &u, &v, f, VectorWidth::Half8);
            let s = base.time_us / ours.time_us;
            sddmm_all.push(s);
            cells.push(fx(s));
        }
        t.row(cells);
    }
    t.row(vec![
        "**geomean**".into(),
        fx(geomean(&spmm_all[..])),
        String::new(),
        fx(geomean(&sddmm_all[..])),
        String::new(),
    ]);
    t.note(format!(
        "geomean SpMM speedup {} (paper 22.89x avg), SDDMM {} (paper 7.12x avg)",
        fx(geomean(&spmm_all)),
        fx(geomean(&sddmm_all))
    ));
    t
}

/// The paper's secondary measurement: HalfGNN SpMM vs cuSPARSE-*float*
/// ("a more realistic 2.52x average").
pub fn spmm_vs_float(quick: bool) -> Table {
    let dev = DeviceConfig::a100_like();
    let mut t = Table::new(
        "Fig 9 (aux) — HalfGNN SpMM speedup over cuSPARSE-float",
        &["dataset", "F=32", "F=64"],
    );
    let mut all = Vec::new();
    for ds in perf_datasets(quick) {
        let data = ds.load(SEED);
        let mut cells = vec![data.spec.name.to_string()];
        for &f in &[32usize, 64] {
            let xf = crate::experiments::random_features_f(&data, f, 4);
            let xh = random_features_h(&data, f, 4);
            let (_, base) =
                cusparse::spmm_float(&dev, &data.coo, cusparse::EdgeWeightsF32::Ones, &xf, f, None);
            let (_, ours) = halfgnn_spmm::spmm(
                &dev,
                &data.coo,
                EdgeWeights::Ones,
                &xh,
                f,
                None,
                &halfgnn_spmm::SpmmConfig {
                    scaling: halfgnn_kernels::common::ScalePlacement::None,
                    ..Default::default()
                },
            );
            let s = base.time_us / ours.time_us;
            all.push(s);
            cells.push(fx(s));
        }
        t.row(cells);
    }
    t.note(format!("geomean = {} (paper: 2.52x average)", fx(geomean(&all))));
    t
}
