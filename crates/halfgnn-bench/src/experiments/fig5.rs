//! Fig. 5 — HalfGNN reaches the same accuracy as float-based DGL on all
//! labeled datasets and all three models.

use crate::experiments::SEED;
use crate::Table;
use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

/// Epochs per dataset: small citation graphs get more (they need them);
/// the dense hub graphs converge in fewer.
fn epochs_for(id: &str, quick: bool) -> usize {
    if quick {
        return 12;
    }
    match id {
        "G1" | "G2" | "G3" => 200,
        _ => 100,
    }
}

/// Train float vs HalfGNN on every labeled dataset and model.
pub fn run(quick: bool) -> Table {
    let mut t = Table::new(
        "Fig 5 — accuracy: HalfGNN vs DGL-float",
        &["dataset", "model", "epochs", "float acc", "halfgnn acc", "delta"],
    );
    let sets = if quick { vec![Dataset::cora(), Dataset::reddit()] } else { Dataset::labeled() };
    let mut max_drop = 0.0f32;
    for ds in sets {
        let data = ds.load(SEED);
        let epochs = epochs_for(data.spec.id, quick);
        for model in [ModelKind::Gcn, ModelKind::Gat, ModelKind::Gin] {
            let base = TrainConfig { model, epochs, ..TrainConfig::default() };
            let f = train(&data, &TrainConfig { precision: PrecisionMode::Float, ..base.clone() });
            let h =
                train(&data, &TrainConfig { precision: PrecisionMode::HalfGnn, ..base.clone() });
            let delta = h.final_train_accuracy - f.final_train_accuracy;
            max_drop = max_drop.max(-delta);
            t.row(vec![
                data.spec.name.to_string(),
                format!("{model:?}"),
                epochs.to_string(),
                format!("{:.3}", f.final_train_accuracy),
                format!("{:.3}", h.final_train_accuracy),
                format!("{delta:+.3}"),
            ]);
        }
    }
    t.note(format!(
        "max accuracy drop of HalfGNN vs float: {max_drop:.3} (the paper reports deltas within 0.3-1.0%)"
    ));
    t
}
