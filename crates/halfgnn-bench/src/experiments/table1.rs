//! Table 1 — the dataset inventory: paper sizes vs. the scaled synthetic
//! stand-ins this reproduction generates.

use crate::experiments::SEED;
use crate::Table;
use halfgnn_graph::datasets::Dataset;

/// Print the registry with paper and realized (scaled) shapes.
pub fn run(quick: bool) -> Table {
    let mut t = Table::new(
        "Table 1 — datasets (paper vs. scaled stand-in)",
        &[
            "id",
            "name",
            "paper |V|",
            "paper |E|",
            "|F|",
            "|C|",
            "labeled",
            "scaled |V|",
            "scaled |E|",
            "mean deg",
            "max deg",
            "gini",
        ],
    );
    let sets = if quick { Dataset::labeled() } else { Dataset::all() };
    for ds in sets {
        let s = ds.spec();
        let loaded = ds.load(SEED);
        let skew = halfgnn_graph::metrics::degree_stats(&loaded.adj);
        t.row(vec![
            s.id.to_string(),
            s.name.to_string(),
            s.paper_vertices.to_string(),
            s.paper_edges.to_string(),
            format!("{} ({})", s.feat, s.paper_feat),
            s.classes.to_string(),
            if s.labeled { "yes".into() } else { "gen".into() },
            loaded.num_vertices().to_string(),
            loaded.num_edges().to_string(),
            format!("{:.1}", loaded.adj.mean_degree()),
            loaded.adj.max_degree().to_string(),
            format!("{:.2}", skew.gini),
        ]);
    }
    t.note("Scaled |E| counts the symmetrized, self-looped adjacency actually trained on.");
    t.note("|F| column shows scaled (paper) input feature lengths; hidden length is 64 as in the paper.");
    t
}
