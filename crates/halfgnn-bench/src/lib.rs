//! The figure/table reproduction harness: one module per experiment in the
//! paper's evaluation (§6), each regenerating the corresponding table or
//! figure series on the cost-model simulator.
//!
//! Run through the `repro` binary:
//!
//! ```text
//! cargo run --release -p halfgnn-bench --bin repro -- fig9
//! cargo run --release -p halfgnn-bench --bin repro -- all
//! ```
//!
//! Every experiment returns a [`Table`] rendered as GitHub markdown, so
//! outputs paste directly into EXPERIMENTS.md.

pub mod experiments;

use std::fmt;

/// A rendered experiment result.
pub struct Table {
    /// Experiment id ("fig9") and caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Footnotes: paper-vs-measured commentary, caveats.
    pub notes: Vec<String>,
}

impl Table {
    /// Empty table with the given title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n### {}\n", self.title)?;
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(f, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"))?;
        for r in &self.rows {
            writeln!(f, "| {} |", r.join(" | "))?;
        }
        for n in &self.notes {
            writeln!(f, "\n> {n}")?;
        }
        Ok(())
    }
}

/// Geometric mean of positive values (how the paper averages speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Format a speedup ratio.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format microseconds.
pub fn us(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("fig0: demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("shape holds");
        let s = t.to_string();
        assert!(s.contains("### fig0: demo"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("> shape holds"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
