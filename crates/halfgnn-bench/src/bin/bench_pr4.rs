//! `bench_pr4` — fused attention pipeline benchmark: the single-pass
//! SDDMM → edge-softmax → SpMM kernel vs. the five-kernel unfused chain.
//!
//! Two sections, both on a modeled A100:
//!
//! * `kernels` — for a low-skew Erdős–Rényi graph and a power-law
//!   preferential-attachment graph, at feature dims 8/64/256: modeled
//!   cycles and modeled DRAM bytes of the GAT attention forward
//!   (scores → row-max → shadow-exp → row-sum → normalize → aggregate)
//!   and the softmax-grad backward, fused vs. unfused. Every fused run
//!   goes through the f64 oracle (`oracle_clean` is asserted, not
//!   observed) and inside an `overflow::isolated` window (event count
//!   must be 0).
//! * `training` — one end-to-end GAT epoch on the SBM PubMed stand-in
//!   and the preferential-attachment Hollywood09 stand-in, `tuning: Off`
//!   vs `tuning: Auto` (the tuner now owns the fused/unfused choice):
//!   modeled epoch time, modeled DRAM traffic, plan-cache counters, and
//!   the run's non-finite conversion count (must be 0).
//!
//! Emits `BENCH_pr4.json` in the current directory; run from the repo
//! root. The headline: at narrow feature dims the fused pass wins big on
//! both cycles and DRAM traffic (the eliminated |E|-length intermediates
//! dominate); at wide dims the per-edge feature gather dominates both
//! pipelines and the gap narrows — exactly why fusion is a tuned
//! dimension rather than a hard-wired default.

use halfgnn_graph::datasets::Dataset;
use halfgnn_graph::{gen, Coo, Csr};
use halfgnn_half::overflow;
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::Half;
use halfgnn_kernels::common::{EdgeWeights, Reduce, ScalePlacement};
use halfgnn_kernels::oracle::{self, Tolerance};
use halfgnn_kernels::{edge_ops, halfgnn_spmm};
use halfgnn_nn::trainer::{train_on, ModelKind, PrecisionMode, TrainConfig, Tuning};
use halfgnn_sim::{DeviceConfig, KernelStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ATTN_SLOPE: f32 = 0.2;

fn random_halves(n: usize, scale: f32, seed: u64) -> Vec<Half> {
    let mut rng = StdRng::seed_from_u64(seed);
    let v: Vec<f32> = (0..n).map(|_| rng.gen_range(-scale..scale)).collect();
    f32_slice_to_half(&v)
}

/// The five-kernel unfused attention forward, with composed stats.
fn unfused_forward(
    dev: &DeviceConfig,
    coo: &Coo,
    s_row: &[Half],
    s_col: &[Half],
    z: &[Half],
    f: usize,
) -> (Vec<Half>, Vec<Half>, KernelStats) {
    let (e, s1) = edge_ops::src_dst_add_leakyrelu(dev, coo, s_row, s_col, ATTN_SLOPE);
    let (m, s2) = halfgnn_spmm::edge_reduce(dev, coo, &e, Reduce::Max);
    let (num, s3) = edge_ops::sub_row_exp(dev, coo, &e, &m, true);
    let (zs, s4) = halfgnn_spmm::edge_reduce(dev, coo, &num, Reduce::Sum);
    let (alpha, s5) = edge_ops::div_row(dev, coo, &num, &zs);
    let (_, s6) = halfgnn_spmm::spmm(
        dev,
        coo,
        EdgeWeights::Values(&alpha),
        z,
        f,
        None,
        &halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() },
    );
    (e, alpha, s1.then(&s2).then(&s3).then(&s4).then(&s5).then(&s6))
}

/// The four-kernel unfused softmax-grad backward, with composed stats.
fn unfused_backward(
    dev: &DeviceConfig,
    coo: &Coo,
    alpha: &[Half],
    dalpha: &[Half],
    e: &[Half],
) -> KernelStats {
    let (prod, s1) = edge_ops::mul(dev, coo, alpha, dalpha);
    let (t, s2) = halfgnn_spmm::edge_reduce(dev, coo, &prod, Reduce::Sum);
    let (de_soft, s3) = edge_ops::softmax_grad(dev, coo, alpha, dalpha, &t);
    let (_, s4) = edge_ops::leakyrelu_grad(dev, coo, e, &de_soft, ATTN_SLOPE);
    s1.then(&s2).then(&s3).then(&s4)
}

struct KernelRow {
    graph: &'static str,
    f: usize,
    fwd_fused_cycles: f64,
    fwd_unfused_cycles: f64,
    fwd_fused_dram: u64,
    fwd_unfused_dram: u64,
    bwd_fused_cycles: f64,
    bwd_unfused_cycles: f64,
    bwd_fused_dram: u64,
    bwd_unfused_dram: u64,
    overflow_events: u64,
}

impl KernelRow {
    fn cycle_speedup(&self) -> f64 {
        self.fwd_unfused_cycles / self.fwd_fused_cycles
    }
    fn dram_ratio(&self) -> f64 {
        self.fwd_unfused_dram as f64 / self.fwd_fused_dram as f64
    }
}

fn kernel_rows(dev: &DeviceConfig) -> Vec<KernelRow> {
    let graphs = [
        (
            "er_low_skew",
            Csr::from_edges(3_000, 3_000, &gen::erdos_renyi(3_000, 18_000, 7))
                .symmetrized_with_self_loops(),
        ),
        (
            "powerlaw",
            Csr::from_edges(3_000, 3_000, &gen::preferential_attachment(3_000, 10, 7))
                .symmetrized_with_self_loops(),
        ),
    ];
    let tol = Tolerance::half_default();
    let mut rows = Vec::new();
    for (name, csr) in &graphs {
        let coo = csr.to_coo();
        for f in [8usize, 64, 256] {
            let s_row = random_halves(coo.num_rows(), 1.0, 0x40 ^ f as u64);
            let s_col = random_halves(coo.num_cols(), 1.0, 0x41 ^ f as u64);
            let z = random_halves(coo.num_cols() * f, 0.5, 0x42 ^ f as u64);
            let dalpha = random_halves(coo.nnz(), 0.5, 0x43 ^ f as u64);

            // Fused paths run under the oracle and an isolated provenance
            // window: correctness is a hard gate on every benchmark row.
            let ((fwd, fwd_stats, fwd_report), fwd_sum) = overflow::isolated(|| {
                oracle::check_fused_attn_forward(dev, &coo, &s_row, &s_col, ATTN_SLOPE, &z, f, tol)
            });
            fwd_report.assert_ok();
            let ((_, bwd_stats, bwd_report), bwd_sum) = overflow::isolated(|| {
                oracle::check_fused_softmax_grad(
                    dev, &coo, &fwd.alpha, &dalpha, &fwd.e, ATTN_SLOPE, tol,
                )
            });
            bwd_report.assert_ok();

            let (e_u, alpha_u, u_fwd) = unfused_forward(dev, &coo, &s_row, &s_col, &z, f);
            let u_bwd = unfused_backward(dev, &coo, &alpha_u, &dalpha, &e_u);

            rows.push(KernelRow {
                graph: name,
                f,
                fwd_fused_cycles: fwd_stats.cycles,
                fwd_unfused_cycles: u_fwd.cycles,
                fwd_fused_dram: fwd_stats.dram_bytes(),
                fwd_unfused_dram: u_fwd.dram_bytes(),
                bwd_fused_cycles: bwd_stats.cycles,
                bwd_unfused_cycles: u_bwd.cycles,
                bwd_fused_dram: bwd_stats.dram_bytes(),
                bwd_unfused_dram: u_bwd.dram_bytes(),
                overflow_events: fwd_sum.nonfinite() + bwd_sum.nonfinite(),
            });
        }
    }
    rows
}

struct TrainRow {
    graph: &'static str,
    off_epoch_us: f64,
    auto_epoch_us: f64,
    off_dram: u64,
    auto_dram: u64,
    cache: (u64, u64, u64),
    overflow_events: u64,
}

fn train_rows(dev: &DeviceConfig) -> Vec<TrainRow> {
    let mut rows = Vec::new();
    for (graph, data) in [
        ("sbm_low_skew", Dataset::pubmed().load(42)),
        ("powerlaw", Dataset::hollywood09().load(42)),
    ] {
        let base = TrainConfig {
            model: ModelKind::Gat,
            precision: PrecisionMode::HalfGnn,
            epochs: 1,
            hidden: 64,
            ..TrainConfig::default()
        };
        let off = train_on(dev, &data, &base);
        let auto = train_on(dev, &data, &TrainConfig { tuning: Tuning::Auto, ..base });
        let c = auto.tuning_counters.expect("Auto reports counters");
        let overflow_events: u64 = auto.overflow_per_epoch.iter().map(|s| s.nonfinite()).sum();
        rows.push(TrainRow {
            graph,
            off_epoch_us: off.epoch_time_us,
            auto_epoch_us: auto.epoch_time_us,
            off_dram: off.dram_bytes_per_epoch,
            auto_dram: auto.dram_bytes_per_epoch,
            cache: (c.hits, c.misses, c.evaluations),
            overflow_events,
        });
    }
    rows
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let kernels = kernel_rows(&dev);
    let training = train_rows(&dev);

    let headline_configs =
        kernels.iter().filter(|r| r.cycle_speedup() >= 1.25 && r.dram_ratio() >= 1.5).count();
    let total_overflow: u64 = kernels.iter().map(|r| r.overflow_events).sum::<u64>()
        + training.iter().map(|r| r.overflow_events).sum::<u64>();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr4_fused_attention\",\n");
    json.push_str("  \"device\": \"a100_like (modeled)\",\n");
    json.push_str(&format!("  \"headline_configs\": {headline_configs},\n"));
    json.push_str(&format!("  \"total_overflow_events\": {total_overflow},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"f\": {}, \
             \"fwd_fused_cycles\": {:.1}, \"fwd_unfused_cycles\": {:.1}, \
             \"fwd_cycle_speedup\": {:.3}, \
             \"fwd_fused_dram_bytes\": {}, \"fwd_unfused_dram_bytes\": {}, \
             \"fwd_dram_ratio\": {:.3}, \
             \"bwd_fused_cycles\": {:.1}, \"bwd_unfused_cycles\": {:.1}, \
             \"bwd_cycle_speedup\": {:.3}, \
             \"bwd_fused_dram_bytes\": {}, \"bwd_unfused_dram_bytes\": {}, \
             \"bwd_dram_ratio\": {:.3}, \
             \"oracle_clean\": true, \"overflow_events\": {}}}{}\n",
            r.graph,
            r.f,
            r.fwd_fused_cycles,
            r.fwd_unfused_cycles,
            r.cycle_speedup(),
            r.fwd_fused_dram,
            r.fwd_unfused_dram,
            r.dram_ratio(),
            r.bwd_fused_cycles,
            r.bwd_unfused_cycles,
            r.bwd_unfused_cycles / r.bwd_fused_cycles,
            r.bwd_fused_dram,
            r.bwd_unfused_dram,
            r.bwd_unfused_dram as f64 / r.bwd_fused_dram as f64,
            r.overflow_events,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"training\": [\n");
    for (i, r) in training.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"model\": \"gat\", \"off_epoch_us\": {:.1}, \
             \"auto_epoch_us\": {:.1}, \"speedup\": {:.3}, \
             \"off_dram_bytes\": {}, \"auto_dram_bytes\": {}, \"dram_ratio\": {:.3}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"candidate_evaluations\": {}, \
             \"overflow_events\": {}}}{}\n",
            r.graph,
            r.off_epoch_us,
            r.auto_epoch_us,
            r.off_epoch_us / r.auto_epoch_us,
            r.off_dram,
            r.auto_dram,
            r.off_dram as f64 / r.auto_dram as f64,
            r.cache.0,
            r.cache.1,
            r.cache.2,
            r.overflow_events,
            if i + 1 < training.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr4.json", &json).expect("write BENCH_pr4.json");
    print!("{json}");
    for r in &kernels {
        eprintln!(
            "[bench_pr4] {:>12} f={:<3} fwd: fused {:>9.0} cyc / {:>6.2} MiB | \
             unfused {:>9.0} cyc / {:>6.2} MiB | {:.3}x cyc {:.3}x dram",
            r.graph,
            r.f,
            r.fwd_fused_cycles,
            r.fwd_fused_dram as f64 / 1048576.0,
            r.fwd_unfused_cycles,
            r.fwd_unfused_dram as f64 / 1048576.0,
            r.cycle_speedup(),
            r.dram_ratio()
        );
    }
    for r in &training {
        eprintln!(
            "[bench_pr4] {:>12} gat epoch: off {:>11.0} us / {:>7.2} MiB | \
             auto {:>11.0} us / {:>7.2} MiB | cache {}h/{}m/{}e | {} overflow",
            r.graph,
            r.off_epoch_us,
            r.off_dram as f64 / 1048576.0,
            r.auto_epoch_us,
            r.auto_dram as f64 / 1048576.0,
            r.cache.0,
            r.cache.1,
            r.cache.2,
            r.overflow_events
        );
    }
    assert!(
        headline_configs >= 1,
        "fused attention must hit >=1.25x cycles and >=1.5x dram on some config"
    );
    assert_eq!(total_overflow, 0, "fused pipeline must stay overflow-free");
}
