//! `bench_pr10` — INT8 quantized wire + kernel path.
//!
//! One sweep on the modeled A100: GCN and SAGE on the G1-class graph
//! (Cora) plus GCN on G3 (Pubmed-class), `--precision i8` against the
//! f16 HalfGNN baseline, then every sharded wire config, then the tuner's
//! oracle gate.
//!
//! Hard gates, asserted not observed:
//!
//! * accuracy: every I8 run lands within ε = 0.08 of its f16
//!   counterpart's test accuracy with no NaN epoch — the 1-byte wire and
//!   stochastic rounding cost bandwidth, not convergence;
//! * saturation: zero *unflagged* saturation events — every epoch whose
//!   summary counts a clamp or non-finite input must carry first-event
//!   provenance, and the baseline f16 runs must quantize nothing;
//! * wire: on every sharded config (1D contiguous/balanced, 1.5D at
//!   c = 1 and c = 2), halo and all-reduce bytes are exactly 0.5× the
//!   f16 ledger — the i8 and f16 pipelines move the same elements, so
//!   the ratio is a byte-width identity. Against float the end-to-end
//!   ratios land within 5% of 0.25×: the half pipeline pads Cora's 7
//!   classes to 8 where float does not, so the gradient-side wires carry
//!   slightly different element counts by design. (The exact 0.25× at
//!   matched element counts is pinned per-exchange by the
//!   `shard_equivalence` proptests.);
//! * tuner: `spmm_i8_plan` yields a plan the f64 oracle confirms clean
//!   on the bench graph, and under a 6-octave exponent-bias stress every
//!   candidate saturates and the tuner selects nothing — it never ships
//!   an oracle-dirty I8 plan.
//!
//! Emits `BENCH_pr10.json` in the current directory; run from the repo
//! root.

use halfgnn_graph::datasets::Dataset;
use halfgnn_graph::partition::PartitionStrategy;
use halfgnn_half::quant;
use halfgnn_nn::trainer::{train_on, ModelKind, PrecisionMode, TrainConfig};
use halfgnn_sim::interconnect::Topology;
use halfgnn_sim::DeviceConfig;
use halfgnn_tune::Tuner;

const EPS: f32 = 0.08;

struct AccRow {
    graph: &'static str,
    model: ModelKind,
    f16_accuracy: f32,
    i8_accuracy: f32,
    quantized: u64,
    saturated: u64,
}

struct WireRow {
    shards: usize,
    partition: &'static str,
    i8_halo: u64,
    f16_halo: u64,
    f32_halo: u64,
    i8_allreduce: u64,
    f16_allreduce: u64,
    f32_allreduce: u64,
}

fn model_tag(m: ModelKind) -> &'static str {
    match m {
        ModelKind::Gcn => "gcn",
        ModelKind::Gat => "gat",
        ModelKind::Gin => "gin",
        ModelKind::Sage => "sage",
    }
}

/// Gate: a saturation summary may count flagged events only with
/// first-event provenance attached; silent clamps are a bug.
fn assert_flagged_events_carry_provenance(tag: &str, report: &halfgnn_nn::trainer::TrainReport) {
    for (ep, s) in report.saturation_per_epoch.iter().enumerate() {
        assert!(
            s.flagged() == 0 || s.first.is_some(),
            "{tag}: epoch {ep} counts {} flagged quantizations without provenance",
            s.flagged()
        );
    }
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let mut acc_rows: Vec<AccRow> = Vec::new();

    // Gate 1 + 2: accuracy within ε of f16, saturation fully flagged.
    for (gid, models) in
        [("G1", &[ModelKind::Gcn, ModelKind::Sage][..]), ("G3", &[ModelKind::Gcn][..])]
    {
        let data = Dataset::by_id(gid).expect("graph in registry").load(42);
        for &model in models {
            let base = TrainConfig {
                model,
                epochs: 20,
                hidden: 16,
                lr: 0.02,
                seed: 3,
                ..TrainConfig::default()
            };
            let f16 = train_on(
                &dev,
                &data,
                &TrainConfig { precision: PrecisionMode::HalfGnn, ..base.clone() },
            );
            let i8 = train_on(
                &dev,
                &data,
                &TrainConfig { precision: PrecisionMode::I8, ..base.clone() },
            );

            assert!(i8.nan_epoch.is_none(), "{gid}/{model:?}: I8 NaN epoch");
            assert!(
                (f16.test_accuracy - i8.test_accuracy).abs() < EPS,
                "{gid}/{model:?}: f16 {} vs i8 {}",
                f16.test_accuracy,
                i8.test_accuracy
            );
            assert_flagged_events_carry_provenance(&format!("{gid}/{model:?}"), &i8);
            let quantized: u64 = i8.saturation_per_epoch.iter().map(|s| s.quantized).sum();
            let saturated: u64 = i8.saturation_per_epoch.iter().map(|s| s.flagged()).sum();
            assert!(quantized > 0, "{gid}/{model:?}: the I8 path never quantized");
            assert!(
                f16.saturation_per_epoch.iter().all(|s| s.quantized == 0),
                "{gid}/{model:?}: f16 baseline touched the quantizer"
            );
            acc_rows.push(AccRow {
                graph: gid,
                model,
                f16_accuracy: f16.test_accuracy,
                i8_accuracy: i8.test_accuracy,
                quantized,
                saturated,
            });
        }
    }

    // A non-default block size must train just as well (the joint-exponent
    // bucket of the gradient wire is a knob, not a correctness risk).
    {
        let data = Dataset::by_id("G1").expect("G1 in registry").load(42);
        let cfg = TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::I8,
            i8_block: Some(128),
            epochs: 20,
            hidden: 16,
            lr: 0.02,
            seed: 3,
            ..TrainConfig::default()
        };
        let r = train_on(&dev, &data, &cfg);
        assert!(r.nan_epoch.is_none(), "i8-block 128: NaN epoch");
        let f16_gcn = acc_rows
            .iter()
            .find(|r| r.graph == "G1" && r.model == ModelKind::Gcn)
            .expect("G1/GCN row");
        assert!(
            (f16_gcn.f16_accuracy - r.test_accuracy).abs() < EPS,
            "i8-block 128: f16 {} vs i8 {}",
            f16_gcn.f16_accuracy,
            r.test_accuracy
        );
    }

    // Gate 3: wire bytes on every sharded config.
    let data = Dataset::by_id("G1").expect("G1 in registry").load(42);
    let mut wire_rows: Vec<WireRow> = Vec::new();
    let mut configs: Vec<(usize, PartitionStrategy, &'static str)> = vec![
        (2, PartitionStrategy::Contiguous, "contiguous"),
        (2, PartitionStrategy::DegreeBalanced, "balanced"),
        (2, PartitionStrategy::OneP5D { c: 1 }, "1p5d-c1"),
        (4, PartitionStrategy::Contiguous, "contiguous"),
        (4, PartitionStrategy::DegreeBalanced, "balanced"),
        (4, PartitionStrategy::OneP5D { c: 1 }, "1p5d-c1"),
    ];
    configs.push((4, PartitionStrategy::OneP5D { c: 2 }, "1p5d-c2"));
    for (shards, partition, ptag) in configs {
        let base = TrainConfig {
            model: ModelKind::Gcn,
            epochs: 4,
            hidden: 16,
            lr: 0.02,
            seed: 3,
            shards,
            partition,
            topology: Topology::Ring,
            ..TrainConfig::default()
        };
        let by_mode = |precision| train_on(&dev, &data, &TrainConfig { precision, ..base.clone() });
        let ri = by_mode(PrecisionMode::I8);
        let rh = by_mode(PrecisionMode::HalfGnn);
        let rf = by_mode(PrecisionMode::Float);
        let tag = format!("shards={shards}/{ptag}");

        assert_flagged_events_carry_provenance(&tag, &ri);
        assert_eq!(
            2 * ri.comms_halo_bytes_per_epoch,
            rh.comms_halo_bytes_per_epoch,
            "{tag}: i8 halo must be exactly half the f16 wire"
        );
        assert_eq!(
            2 * ri.comms_allreduce_bytes_per_epoch,
            rh.comms_allreduce_bytes_per_epoch,
            "{tag}: i8 all-reduce must be exactly half the f16 wire"
        );
        // Float carries 7 unpadded classes where the half pipeline pads
        // to 8, so the gradient-side wires differ slightly in element
        // count: 0.25× within 5%, on both halo and all-reduce ledgers.
        for (kind, i8b, f32b) in [
            ("halo", ri.comms_halo_bytes_per_epoch, rf.comms_halo_bytes_per_epoch),
            ("all-reduce", ri.comms_allreduce_bytes_per_epoch, rf.comms_allreduce_bytes_per_epoch),
        ] {
            let quad = 4 * i8b;
            assert!(
                quad >= f32b && quad * 100 <= f32b * 105,
                "{tag}: 4×i8 {kind} {quad} vs float {f32b}"
            );
        }
        assert!(ri.comms_halo_bytes_per_epoch > 0, "{tag}: halo must be metered");

        wire_rows.push(WireRow {
            shards,
            partition: ptag,
            i8_halo: ri.comms_halo_bytes_per_epoch,
            f16_halo: rh.comms_halo_bytes_per_epoch,
            f32_halo: rf.comms_halo_bytes_per_epoch,
            i8_allreduce: ri.comms_allreduce_bytes_per_epoch,
            f16_allreduce: rh.comms_allreduce_bytes_per_epoch,
            f32_allreduce: rf.comms_allreduce_bytes_per_epoch,
        });
    }

    // Gate 4: the tuner's oracle gate. A selected plan re-vets clean
    // through the same f64-oracle harness the tuner used to pick it; a
    // stressed quantizer leaves nothing to select.
    let f = 16usize;
    let tuner = Tuner::auto(&dev);
    let plan =
        tuner.spmm_i8_plan(&data.adj, f, false, 3).expect("the bench graph must tune clean in I8");
    tuner
        .vet_spmm_i8(&data.adj, f, false, 3, &plan)
        .unwrap_or_else(|r| panic!("selected I8 plan must re-vet oracle-clean, got: {r}"));
    // Stress: bias every scale 6 octaves down — all candidates clamp, the
    // tuner must select nothing rather than ship a dirty plan.
    quant::set_exponent_bias(-6);
    let dirty = tuner.spmm_i8_plan(&data.adj, 8, false, 3);
    quant::set_exponent_bias(0);
    assert_eq!(dirty, None, "an oracle-dirty I8 plan must never be selected");

    let accuracy_gap_max =
        acc_rows.iter().map(|r| (r.f16_accuracy - r.i8_accuracy).abs()).fold(0.0f32, f32::max);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr10_i8_wire_and_kernels\",\n");
    json.push_str("  \"device\": \"a100_like (modeled)\",\n");
    json.push_str(&format!(
        "  \"epsilon\": {EPS},\n  \"accuracy_gap_max\": {accuracy_gap_max:.4},\n  \
         \"unflagged_saturation_events\": 0,\n  \
         \"wire_bytes_over_f16\": 0.5,\n  \"wire_bytes_over_float\": \"0.25 within 5%\",\n  \
         \"tuner_selected_plan_oracle_mismatches\": 0,\n  \
         \"tuner_dirty_plan_selected\": false,\n"
    ));
    json.push_str("  \"accuracy_rows\": [\n");
    for (i, r) in acc_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"model\": \"{}\", \"f16_test_accuracy\": {:.4}, \
             \"i8_test_accuracy\": {:.4}, \"quantized\": {}, \"saturated\": {}}}{}\n",
            r.graph,
            model_tag(r.model),
            r.f16_accuracy,
            r.i8_accuracy,
            r.quantized,
            r.saturated,
            if i + 1 < acc_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"wire_rows\": [\n");
    for (i, r) in wire_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"partition\": \"{}\", \"i8_halo_bytes\": {}, \
             \"f16_halo_bytes\": {}, \"f32_halo_bytes\": {}, \"i8_allreduce_bytes\": {}, \
             \"f16_allreduce_bytes\": {}, \"f32_allreduce_bytes\": {}}}{}\n",
            r.shards,
            r.partition,
            r.i8_halo,
            r.f16_halo,
            r.f32_halo,
            r.i8_allreduce,
            r.f16_allreduce,
            r.f32_allreduce,
            if i + 1 < wire_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr10.json", &json).expect("write BENCH_pr10.json");
    print!("{json}");
    for r in &acc_rows {
        eprintln!(
            "[bench_pr10] {:<2} {:<4} f16 {:.4} -> i8 {:.4}  ({} quantized, {} saturated+flagged)",
            r.graph,
            model_tag(r.model),
            r.f16_accuracy,
            r.i8_accuracy,
            r.quantized,
            r.saturated
        );
    }
    for r in &wire_rows {
        eprintln!(
            "[bench_pr10] shards={} {:<10} halo i8/f16/f32 {}/{}/{}  allreduce {}/{}/{}",
            r.shards,
            r.partition,
            r.i8_halo,
            r.f16_halo,
            r.f32_halo,
            r.i8_allreduce,
            r.f16_allreduce,
            r.f32_allreduce
        );
    }
    eprintln!("[bench_pr10] tuner: selected plan oracle-clean; stressed quantizer selects none");
}
