//! `bench_pr5` — sharded multi-device training under the FP16-aware
//! communication cost model.
//!
//! One sweep on a modeled A100 cluster with NVLink-like links: GCN
//! training on a low-skew SBM (Citeseer stand-in, even class count so
//! half and float move identical row sets) and the power-law Hollywood09
//! stand-in, at shard counts 1/2/4/8, float vs. HalfGNN, ring vs.
//! crossbar. Every row reports the epoch's metered interconnect traffic
//! (halo feature exchanges + gradient all-reduces), the busiest-link
//! comms time, and the run's overflow-event count.
//!
//! Hard gates, asserted not observed:
//!
//! * float sharded losses are bit-for-bit the `shards = 1` run at every
//!   shard count and topology (the shard-equivalence property);
//! * FP16 halo traffic is half of FP32's at every sharded config (the
//!   headline — 2 bytes/element on the same rows);
//! * zero overflow-provenance events anywhere in the sweep (the f16-wire
//!   all-reduce's discretized bucket scaling is overflow-free by
//!   construction).
//!
//! Emits `BENCH_pr5.json` in the current directory; run from the repo
//! root.

use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{
    train_on, ModelKind, PartitionStrategy, PrecisionMode, Topology, TrainConfig,
};
use halfgnn_sim::DeviceConfig;

struct Row {
    graph: &'static str,
    precision: PrecisionMode,
    shards: usize,
    topology: Topology,
    comms_bytes: u64,
    halo_bytes: u64,
    allreduce_bytes: u64,
    comms_time_us: f64,
    epoch_time_us: f64,
    test_accuracy: f32,
    overflow_events: u64,
    losses_bits: Vec<u32>,
}

fn precision_tag(p: PrecisionMode) -> &'static str {
    match p {
        PrecisionMode::Float => "float",
        PrecisionMode::HalfGnn => "halfgnn",
        PrecisionMode::HalfNaive => "halfnaive",
        PrecisionMode::HalfGnnNoDiscretize => "nodiscretize",
        PrecisionMode::I8 => "i8",
    }
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let graphs = [
        ("sbm_low_skew", Dataset::citeseer().load(42)),
        ("powerlaw", Dataset::hollywood09().load(42)),
    ];
    let mut rows: Vec<Row> = Vec::new();

    for (graph, data) in &graphs {
        for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
            for shards in [1usize, 2, 4, 8] {
                for topology in [Topology::Ring, Topology::AllToAll] {
                    if shards == 1 && topology == Topology::AllToAll {
                        continue; // one device has no interconnect to vary
                    }
                    let cfg = TrainConfig {
                        model: ModelKind::Gcn,
                        precision,
                        epochs: 2,
                        hidden: 64,
                        shards,
                        topology,
                        // Equal-edge boundaries keep the hub shard of the
                        // power-law graph from owning most of the work.
                        partition: PartitionStrategy::DegreeBalanced,
                        ..TrainConfig::default()
                    };
                    let r = train_on(&dev, data, &cfg);
                    rows.push(Row {
                        graph,
                        precision,
                        shards,
                        topology,
                        comms_bytes: r.comms_bytes_per_epoch,
                        halo_bytes: r.comms_halo_bytes_per_epoch,
                        allreduce_bytes: r.comms_allreduce_bytes_per_epoch,
                        comms_time_us: r.comms_time_us_per_epoch,
                        epoch_time_us: r.epoch_time_us,
                        test_accuracy: r.test_accuracy,
                        overflow_events: r.overflow_per_epoch.iter().map(|s| s.nonfinite()).sum(),
                        losses_bits: r.losses.iter().map(|l| l.to_bits()).collect(),
                    });
                }
            }
        }
    }

    // Gate 1: float sharded trajectories are bitwise the single-device run.
    for (graph, _) in &graphs {
        let single = rows
            .iter()
            .find(|r| r.graph == *graph && r.precision == PrecisionMode::Float && r.shards == 1)
            .expect("single-device float row");
        for r in rows
            .iter()
            .filter(|r| r.graph == *graph && r.precision == PrecisionMode::Float && r.shards > 1)
        {
            assert_eq!(
                single.losses_bits, r.losses_bits,
                "{graph}: float shards={} {:?} diverged from single-device",
                r.shards, r.topology
            );
        }
    }

    // Gate 2: FP16 halo traffic is half of FP32's at every sharded config.
    let mut halo_ratios: Vec<f64> = Vec::new();
    for r in rows.iter().filter(|r| r.precision == PrecisionMode::HalfGnn && r.shards > 1) {
        let float_row = rows
            .iter()
            .find(|f| {
                f.graph == r.graph
                    && f.precision == PrecisionMode::Float
                    && f.shards == r.shards
                    && f.topology == r.topology
            })
            .expect("matching float row");
        let ratio = float_row.halo_bytes as f64 / r.halo_bytes as f64;
        assert!(
            (1.8..=2.2).contains(&ratio),
            "{} shards={} {:?}: fp32/fp16 halo ratio {ratio:.3} (float {} vs half {})",
            r.graph,
            r.shards,
            r.topology,
            float_row.halo_bytes,
            r.halo_bytes
        );
        assert!(
            r.comms_time_us < float_row.comms_time_us,
            "half comms must be faster than float at the same shard count"
        );
        halo_ratios.push(ratio);
    }

    // Gate 3: the whole sweep is overflow-free.
    let total_overflow: u64 = rows.iter().map(|r| r.overflow_events).sum();
    assert_eq!(total_overflow, 0, "sharded training must record zero overflow events");

    let min_ratio = halo_ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let max_ratio = halo_ratios.iter().copied().fold(0.0f64, f64::max);
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr5_sharded_training\",\n");
    json.push_str("  \"device\": \"a100_like x N, nvlink_like links (modeled)\",\n");
    json.push_str("  \"model\": \"gcn\",\n");
    json.push_str("  \"float_sharded_bitwise_equal\": true,\n");
    json.push_str(&format!(
        "  \"fp32_over_fp16_halo_ratio_min\": {min_ratio:.4},\n  \
         \"fp32_over_fp16_halo_ratio_max\": {max_ratio:.4},\n"
    ));
    json.push_str(&format!("  \"total_overflow_events\": {total_overflow},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"precision\": \"{}\", \"shards\": {}, \
             \"topology\": \"{}\", \"comms_bytes\": {}, \"halo_bytes\": {}, \
             \"allreduce_bytes\": {}, \"comms_time_us\": {:.1}, \
             \"epoch_time_us\": {:.1}, \"test_accuracy\": {:.4}, \
             \"overflow_events\": {}}}{}\n",
            r.graph,
            precision_tag(r.precision),
            r.shards,
            r.topology.tag(),
            r.comms_bytes,
            r.halo_bytes,
            r.allreduce_bytes,
            r.comms_time_us,
            r.epoch_time_us,
            r.test_accuracy,
            r.overflow_events,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr5.json", &json).expect("write BENCH_pr5.json");
    print!("{json}");
    for r in &rows {
        eprintln!(
            "[bench_pr5] {:>12} {:<8} s={} {:<8} comms {:>8.2} MiB \
             (halo {:>7.2}, allreduce {:>7.2}) in {:>8.1} us",
            r.graph,
            precision_tag(r.precision),
            r.shards,
            r.topology.tag(),
            r.comms_bytes as f64 / 1048576.0,
            r.halo_bytes as f64 / 1048576.0,
            r.allreduce_bytes as f64 / 1048576.0,
            r.comms_time_us,
        );
    }
    eprintln!(
        "[bench_pr5] headline: fp32/fp16 halo byte ratio in [{min_ratio:.3}, {max_ratio:.3}] \
         across every sharded config; float sharded bitwise-equal; {total_overflow} overflow"
    );
}
