//! `bench_pr6` — epoch capture/replay with arena-planned buffers.
//!
//! One sweep on the modeled A100: GCN and GAT on a low-skew SBM
//! (Citeseer stand-in) and the power-law Hollywood09 stand-in, float vs.
//! HalfGNN, every run with `replay: true`. Epoch 0 captures the kernel
//! sequence; epochs 1+ replay pre-resolved plans with launch overhead
//! stripped, and the captured graph's buffer lifetimes are packed into
//! arena slabs.
//!
//! Hard gates, asserted not observed:
//!
//! * replay is bit-identical: every loss of the `replay: true` run equals
//!   the eager run's bits at every config;
//! * the modeled-cycle win is real: every replayed epoch is strictly
//!   cheaper than its capture epoch;
//! * the memory headline: an eager FP32 baseline (no lifetime reuse — one
//!   live slab per intermediate, what an allocator without the captured
//!   graph must hold) over HalfGNN's arena-planned peak is >= 2.0 at
//!   every config. The decomposition is reported alongside: the
//!   precision-only component (planned float / planned half, ~1.9x — the
//!   f32 softmax/cross-entropy tail is shared by both pipelines) and the
//!   reuse-only component (eager / planned within one precision, >= 2.0,
//!   landing near the paper's 2.67x footprint ratio).
//!
//! Emits `BENCH_pr6.json` in the current directory; run from the repo
//! root.

use halfgnn_exec::ReplaySummary;
use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{train_on, ModelKind, PrecisionMode, TrainConfig};
use halfgnn_sim::DeviceConfig;

struct Row {
    graph: &'static str,
    model: ModelKind,
    precision: PrecisionMode,
    summary: ReplaySummary,
    capture_epoch_us: f64,
    replay_epoch_us: f64,
    test_accuracy: f32,
}

fn precision_tag(p: PrecisionMode) -> &'static str {
    match p {
        PrecisionMode::Float => "float",
        PrecisionMode::HalfGnn => "halfgnn",
        PrecisionMode::HalfNaive => "halfnaive",
        PrecisionMode::HalfGnnNoDiscretize => "nodiscretize",
        PrecisionMode::I8 => "i8",
    }
}

fn model_tag(m: ModelKind) -> &'static str {
    match m {
        ModelKind::Gcn => "gcn",
        ModelKind::Gat => "gat",
        ModelKind::Gin => "gin",
        ModelKind::Sage => "sage",
    }
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let graphs = [
        ("sbm_low_skew", Dataset::citeseer().load(42)),
        ("powerlaw", Dataset::hollywood09().load(42)),
    ];
    let mut rows: Vec<Row> = Vec::new();

    for (graph, data) in &graphs {
        for model in [ModelKind::Gcn, ModelKind::Gat] {
            for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
                let base = TrainConfig {
                    model,
                    precision,
                    epochs: 3,
                    hidden: 64,
                    ..TrainConfig::default()
                };
                let eager = train_on(&dev, data, &base);
                let replayed = train_on(&dev, data, &TrainConfig { replay: true, ..base });

                // Gate 1: capture/replay moves no bits.
                assert_eq!(
                    eager.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    replayed.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    "{graph}/{model:?}/{precision:?}: replay diverged from eager"
                );

                // Gate 2: every replayed epoch is modeled strictly cheaper
                // than its capture epoch.
                assert!(
                    replayed.replay_epoch_time_us > 0.0
                        && replayed.replay_epoch_time_us < replayed.epoch_time_us,
                    "{graph}/{model:?}/{precision:?}: replay epoch {} us vs capture {} us",
                    replayed.replay_epoch_time_us,
                    replayed.epoch_time_us
                );

                let summary = replayed.replay.expect("replay run reports a summary");
                assert!(summary.saved_cycles > 0.0, "no launch overhead stripped");
                rows.push(Row {
                    graph,
                    model,
                    precision,
                    summary,
                    capture_epoch_us: replayed.epoch_time_us,
                    replay_epoch_us: replayed.replay_epoch_time_us,
                    test_accuracy: replayed.test_accuracy,
                });
            }
        }
    }

    // Gate 3: the memory headline and its decomposition, per config.
    let mut headline_min = f64::INFINITY;
    let mut headline_max = 0.0f64;
    let mut precision_only_min = f64::INFINITY;
    let mut reuse_min = f64::INFINITY;
    for (graph, _) in &graphs {
        for model in [ModelKind::Gcn, ModelKind::Gat] {
            let find = |p: PrecisionMode| {
                rows.iter()
                    .find(|r| r.graph == *graph && r.model == model && r.precision == p)
                    .expect("row")
            };
            let f = find(PrecisionMode::Float);
            let h = find(PrecisionMode::HalfGnn);
            let headline = f.summary.eager_bytes as f64 / h.summary.peak_bytes as f64;
            assert!(
                headline >= 2.0,
                "{graph}/{model:?}: eager-float / planned-half peak ratio {headline:.2} < 2.0 \
                 (float eager {} vs half peak {})",
                f.summary.eager_bytes,
                h.summary.peak_bytes
            );
            let precision_only = f.summary.peak_bytes as f64 / h.summary.peak_bytes as f64;
            assert!(
                precision_only >= 1.8,
                "{graph}/{model:?}: planned float/half ratio {precision_only:.2} < 1.8"
            );
            for r in [f, h] {
                let reuse = r.summary.eager_bytes as f64 / r.summary.peak_bytes as f64;
                assert!(
                    reuse >= 2.0,
                    "{graph}/{model:?}/{:?}: arena reuse factor {reuse:.2} < 2.0",
                    r.precision
                );
                reuse_min = reuse_min.min(reuse);
            }
            headline_min = headline_min.min(headline);
            headline_max = headline_max.max(headline);
            precision_only_min = precision_only_min.min(precision_only);
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr6_capture_replay\",\n");
    json.push_str("  \"device\": \"a100_like (modeled)\",\n");
    json.push_str("  \"replay_bitwise_equal\": true,\n");
    json.push_str(&format!(
        "  \"float_eager_over_half_planned_peak_ratio_min\": {headline_min:.4},\n  \
         \"float_eager_over_half_planned_peak_ratio_max\": {headline_max:.4},\n  \
         \"planned_float_over_half_peak_ratio_min\": {precision_only_min:.4},\n  \
         \"arena_reuse_factor_min\": {reuse_min:.4},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.summary;
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"model\": \"{}\", \"precision\": \"{}\", \
             \"nodes\": {}, \"plans\": {}, \"buffers\": {}, \
             \"peak_bytes\": {}, \"eager_bytes\": {}, \"external_bytes\": {}, \
             \"saved_cycles_per_epoch\": {:.0}, \"capture_epoch_us\": {:.1}, \
             \"replay_epoch_us\": {:.1}, \"test_accuracy\": {:.4}}}{}\n",
            r.graph,
            model_tag(r.model),
            precision_tag(r.precision),
            s.nodes,
            s.plans,
            s.buffers,
            s.peak_bytes,
            s.eager_bytes,
            s.external_bytes,
            s.saved_cycles,
            r.capture_epoch_us,
            r.replay_epoch_us,
            r.test_accuracy,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
    print!("{json}");
    for r in &rows {
        let s = &r.summary;
        eprintln!(
            "[bench_pr6] {:>12} {:<4} {:<8} {:>3} nodes  peak {:>6.2} MiB \
             (eager {:>6.2}) capture {:>8.1} us -> replay {:>8.1} us",
            r.graph,
            model_tag(r.model),
            precision_tag(r.precision),
            s.nodes,
            s.peak_bytes as f64 / 1048576.0,
            s.eager_bytes as f64 / 1048576.0,
            r.capture_epoch_us,
            r.replay_epoch_us,
        );
    }
    eprintln!(
        "[bench_pr6] headline: eager-float/planned-half peak ratio in \
         [{headline_min:.2}, {headline_max:.2}]; precision-only component >= \
         {precision_only_min:.2}; arena reuse factor >= {reuse_min:.2}; replay bitwise-equal"
    );
}
