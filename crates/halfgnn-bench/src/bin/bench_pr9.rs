//! `bench_pr9` — communication-avoiding 1.5D partitioning vs 1D, with the
//! cross-epoch halo cache and the comm/compute overlap model.
//!
//! One sweep on the modeled NVLink-like cluster: GCN on the low-skew SBM
//! (Citeseer stand-in) and the power-law Hollywood09 stand-in, float and
//! HalfGNN, shards 1/2/4/8, 1D DegreeBalanced vs 1.5D (c = 2). Every row
//! reports the cold-epoch halo/all-reduce bytes, the serialized vs
//! overlapped epoch comm time, and the steady-state halo-cache counters.
//!
//! Hard gates, asserted not observed:
//!
//! * float training under the 1.5D partition is bit-for-bit the
//!   single-device run at every shard count (same windows, same cuts —
//!   replication moves charges, not data);
//! * on the power-law graph 1D halo bytes grow ~linearly with the shard
//!   count (every new shard pays the hub halo again) while 1.5D grows
//!   sublinearly 4 → 8 (each replication group fetches the out-of-group
//!   union once) and undercuts 1D at every shard count — at shards = c
//!   the group owns everything and the wire charge is exactly zero;
//! * overlapped epoch comm time is strictly below serialized on every
//!   sharded config that moves halo bytes (the double-buffered prefetch
//!   hides them under the previous layer's kernels), and exactly equal on
//!   the zero-halo fully-replicated corner;
//! * the steady-state halo cache serves the static input-feature rows for
//!   free on every sharded halo-moving config (hits > 0, bytes saved > 0);
//! * zero overflow events anywhere in the sweep.
//!
//! Emits `BENCH_pr9.json` in the current directory; run from the repo
//! root.

use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{
    train_on, ModelKind, PartitionStrategy, PrecisionMode, Topology, TrainConfig,
};
use halfgnn_sim::DeviceConfig;

struct Row {
    graph: &'static str,
    precision: PrecisionMode,
    partition: PartitionStrategy,
    shards: usize,
    halo_bytes: u64,
    allreduce_bytes: u64,
    serialized_us: f64,
    overlapped_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_bytes_saved: u64,
    epoch_time_us: f64,
    overflow_events: u64,
    losses_bits: Vec<u32>,
}

fn precision_tag(p: PrecisionMode) -> &'static str {
    match p {
        PrecisionMode::Float => "float",
        PrecisionMode::HalfGnn => "halfgnn",
        PrecisionMode::HalfNaive => "halfnaive",
        PrecisionMode::HalfGnnNoDiscretize => "nodiscretize",
        PrecisionMode::I8 => "i8",
    }
}

fn halo(rows: &[Row], graph: &str, partition: PartitionStrategy, shards: usize) -> u64 {
    rows.iter()
        .find(|r| {
            r.graph == graph
                && r.precision == PrecisionMode::HalfGnn
                && r.partition == partition
                && r.shards == shards
        })
        .unwrap_or_else(|| panic!("missing halfgnn row {graph}/{partition:?}/s{shards}"))
        .halo_bytes
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let graphs = [
        ("sbm_low_skew", Dataset::citeseer().load(42)),
        ("powerlaw", Dataset::hollywood09().load(42)),
    ];
    let one5d = PartitionStrategy::OneP5D { c: 2 };
    let mut rows: Vec<Row> = Vec::new();

    for (graph, data) in &graphs {
        for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
            for shards in [1usize, 2, 4, 8] {
                for partition in [
                    PartitionStrategy::DegreeBalanced,
                    one5d,
                    // The scaled-replication point: c = S/2 keeps the
                    // group count at two whatever the shard count.
                    PartitionStrategy::OneP5D { c: 4 },
                ] {
                    if shards == 1 && partition != PartitionStrategy::DegreeBalanced {
                        continue; // one device has nothing to partition
                    }
                    if partition == (PartitionStrategy::OneP5D { c: 4 }) && shards != 8 {
                        continue; // c = 4 needs 8 shards (and equals c = 2 at 8 = 2c)
                    }
                    let cfg = TrainConfig {
                        model: ModelKind::Gcn,
                        precision,
                        epochs: 2,
                        hidden: 64,
                        shards,
                        topology: Topology::Ring,
                        partition,
                        ..TrainConfig::default()
                    };
                    let r = train_on(&dev, data, &cfg);
                    rows.push(Row {
                        graph,
                        precision,
                        partition,
                        shards,
                        halo_bytes: r.comms_halo_bytes_per_epoch,
                        allreduce_bytes: r.comms_allreduce_bytes_per_epoch,
                        serialized_us: r.comms_serialized_us,
                        overlapped_us: r.comms_overlapped_us,
                        cache_hits: r.halo_cache_hits,
                        cache_misses: r.halo_cache_misses,
                        cache_bytes_saved: r.halo_cache_bytes_saved,
                        epoch_time_us: r.epoch_time_us,
                        overflow_events: r.overflow_per_epoch.iter().map(|s| s.nonfinite()).sum(),
                        losses_bits: r.losses.iter().map(|l| l.to_bits()).collect(),
                    });
                }
            }
        }
    }

    // Print the sweep before gating so a failed gate still shows its data.
    for r in &rows {
        eprintln!(
            "[bench_pr9] {:>12} {:<8} {:<11} s={} halo {:>8.2} MiB  \
             comm {:>8.1} us serialized / {:>8.1} us overlapped  cache {}h/{}m",
            r.graph,
            precision_tag(r.precision),
            match r.partition {
                PartitionStrategy::OneP5D { c: 4 } => "1p5d_c4",
                PartitionStrategy::OneP5D { .. } => "1p5d_c2",
                _ => "1d_balanced",
            },
            r.shards,
            r.halo_bytes as f64 / 1048576.0,
            r.serialized_us,
            r.overlapped_us,
            r.cache_hits,
            r.cache_misses,
        );
    }

    // Gate 1: float 1.5D trajectories are bitwise the single-device run.
    for (graph, _) in &graphs {
        let single = rows
            .iter()
            .find(|r| r.graph == *graph && r.precision == PrecisionMode::Float && r.shards == 1)
            .expect("single-device float row");
        for r in rows
            .iter()
            .filter(|r| r.graph == *graph && r.precision == PrecisionMode::Float && r.shards > 1)
        {
            assert_eq!(
                single.losses_bits, r.losses_bits,
                "{graph}: float {:?} shards={} diverged from single-device",
                r.partition, r.shards
            );
        }
    }

    // Gate 2: comms scaling on the power-law graph. 1D pays the (mostly
    // hub) halo on every new shard, so bytes grow *super*linearly in the
    // shard count. At fixed c = 2 the 1.5D charge is exactly the 1D
    // charge at half the shard count (a group of two consecutive shards
    // covers one double-width shard's rows), so it undercuts 1D at every
    // S and is zero at shards = c. Scaling the replication with the
    // machine (c = S/2, two groups always) holds halo bytes flat — the
    // communication-avoiding claim: sublinear where 1D is superlinear.
    let g1d = PartitionStrategy::DegreeBalanced;
    let h1d = (halo(&rows, "powerlaw", g1d, 2), halo(&rows, "powerlaw", g1d, 8));
    let growth_1d = h1d.1 as f64 / h1d.0 as f64;
    assert!(
        growth_1d > 4.0,
        "1D powerlaw halo must grow superlinearly 2->8 shards (4x is linear), \
         got {growth_1d:.2}x"
    );
    let h15_2 = halo(&rows, "powerlaw", one5d, 2);
    let h15_4 = halo(&rows, "powerlaw", one5d, 4);
    let h15_8c4 = halo(&rows, "powerlaw", PartitionStrategy::OneP5D { c: 4 }, 8);
    assert_eq!(h15_2, 0, "at shards = c the replication group pays nothing");
    assert!(
        h15_8c4 <= h15_4,
        "scaled 1.5D (two groups) must hold powerlaw halo flat 4->8 shards: \
         {h15_4} -> {h15_8c4}"
    );
    let growth_15 = h15_8c4 as f64 / h15_4 as f64;
    assert!(
        growth_15 < 2.0,
        "scaled 1.5D powerlaw halo must be sublinear 4->8 shards, got {growth_15:.2}x"
    );
    for (graph, _) in &graphs {
        for shards in [2usize, 4, 8] {
            let b1d = halo(&rows, graph, g1d, shards);
            let b15 = halo(&rows, graph, one5d, shards);
            assert!(b15 < b1d, "{graph} s={shards}: 1.5D halo {b15} must undercut 1D's {b1d}");
        }
    }

    // Gate 3: overlap strictly hides halo time wherever halo moves; the
    // zero-halo corner has nothing to hide. Gate 4 rides along: on those
    // same configs the steady-state cache serves static rows for free.
    for r in rows.iter().filter(|r| r.shards > 1) {
        if r.halo_bytes > 0 {
            assert!(
                r.overlapped_us < r.serialized_us,
                "{} {:?} s={}: overlapped {:.1} !< serialized {:.1}",
                r.graph,
                r.partition,
                r.shards,
                r.overlapped_us,
                r.serialized_us
            );
            assert!(r.cache_hits > 0, "{} {:?} s={}", r.graph, r.partition, r.shards);
            assert!(r.cache_bytes_saved > 0);
        } else {
            assert!((r.overlapped_us - r.serialized_us).abs() < 1e-9);
        }
    }

    // Gate 5: the whole sweep is overflow-free.
    let total_overflow: u64 = rows.iter().map(|r| r.overflow_events).sum();
    assert_eq!(total_overflow, 0, "1.5D training must record zero overflow events");

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr9_one5d_partition_halo_cache_overlap\",\n");
    json.push_str("  \"device\": \"a100_like x N, nvlink_like ring (modeled)\",\n");
    json.push_str("  \"model\": \"gcn\",\n");
    json.push_str("  \"float_one5d_bitwise_equal\": true,\n");
    json.push_str(&format!(
        "  \"powerlaw_1d_halo_growth_2_to_8\": {growth_1d:.3},\n  \
         \"powerlaw_one5d_scaled_halo_growth_4_to_8\": {growth_15:.3},\n"
    ));
    json.push_str(&format!("  \"total_overflow_events\": {total_overflow},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"precision\": \"{}\", \"partition\": \"{}\", \
             \"shards\": {}, \"halo_bytes\": {}, \"allreduce_bytes\": {}, \
             \"serialized_us\": {:.1}, \"overlapped_us\": {:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_bytes_saved\": {}, \
             \"epoch_time_us\": {:.1}, \"overflow_events\": {}}}{}\n",
            r.graph,
            precision_tag(r.precision),
            match r.partition {
                PartitionStrategy::OneP5D { c: 4 } => "1p5d_c4",
                PartitionStrategy::OneP5D { .. } => "1p5d_c2",
                _ => "1d_balanced",
            },
            r.shards,
            r.halo_bytes,
            r.allreduce_bytes,
            r.serialized_us,
            r.overlapped_us,
            r.cache_hits,
            r.cache_misses,
            r.cache_bytes_saved,
            r.epoch_time_us,
            r.overflow_events,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
    print!("{json}");
    eprintln!(
        "[bench_pr9] headline: powerlaw 1D halo grows {growth_1d:.2}x from 2 to 8 shards \
         (superlinear); scaled 1.5D grows {growth_15:.2}x (flat) and is 0 B at shards = c; \
         overlap strictly hides halo time on every halo-moving config; \
         float 1.5D bitwise-equal; {total_overflow} overflow"
    );
}
