//! `bench_pr8` — forward-only serving: coalesced batching, embedding
//! cache, modeled closed-loop latency.
//!
//! Trains a GCN on the G1-class graph (float and HalfGNN), snapshots the
//! weights through the trainer's save path, and serves a synthetic
//! request trace against 1/2/4-shard deployments.
//!
//! Hard gates, asserted not observed:
//!
//! * **bitwise coalescing** — a batched forward returns exactly the bits
//!   each request gets served alone, in float and in half;
//! * **cache headline** — at the same byte budget the f16 embedding cache
//!   holds ≥ 1.9× the vertices of the f32 cache (exactly 2× by
//!   construction);
//! * **latency sanity** — p99 is finite and positive at every shard
//!   count, and every request of the trace is answered.
//!
//! Emits `BENCH_pr8.json` in the current directory; run from the repo
//! root.

use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::models::GcnNorm;
use halfgnn_nn::snapshot::ModelSnapshot;
use halfgnn_nn::trainer::{train_on, ModelKind, PrecisionMode, TrainConfig};
use halfgnn_serve::{CachePrecision, EmbeddingCache, ServeConfig, ServeEngine};
use halfgnn_sim::{latency_stats, synth_trace, DeviceConfig, TraceConfig};

const CACHE_RATIO_GATE: f64 = 1.9;

struct LoopRow {
    shards: usize,
    throughput_rps: f64,
    p50_us: f64,
    p99_us: f64,
    hit_rate: f64,
    halo_mib: f64,
    batches: u64,
    max_batch_vertices: usize,
}

fn precision_tag(p: PrecisionMode) -> &'static str {
    match p {
        PrecisionMode::Float => "float",
        PrecisionMode::HalfGnn => "halfgnn",
        _ => unreachable!("bench serves float|halfgnn only"),
    }
}

/// Train under `precision` and hand the weights off through the snapshot
/// file, exactly as a production trainer → server pipeline would.
fn trained_snapshot(
    dev: &DeviceConfig,
    data: &halfgnn_graph::datasets::LoadedDataset,
    precision: PrecisionMode,
) -> ModelSnapshot {
    let tmp = std::env::temp_dir().join(format!(
        "bench-pr8-{}-{}.snap",
        precision_tag(precision),
        std::process::id()
    ));
    let cfg = TrainConfig {
        model: ModelKind::Gcn,
        precision,
        epochs: 20,
        hidden: 16,
        lr: 0.02,
        seed: 3,
        gcn_norm: GcnNorm::Right,
        snapshot_path: Some(tmp.to_string_lossy().into_owned()),
        ..TrainConfig::default()
    };
    let report = train_on(dev, data, &cfg);
    assert!(report.nan_epoch.is_none(), "{precision:?} training hit NaN");
    let snap = ModelSnapshot::load(&tmp).expect("trainer wrote a loadable snapshot");
    std::fs::remove_file(&tmp).ok();
    snap
}

fn bits_of(rows: &[Vec<f32>]) -> Vec<Vec<u32>> {
    rows.iter().map(|r| r.iter().map(|v| v.to_bits()).collect()).collect()
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let data = Dataset::by_id("G1").expect("G1 in registry").load(42);
    let n = data.num_vertices();

    let float_snap = trained_snapshot(&dev, &data, PrecisionMode::Float);
    let half_snap = trained_snapshot(&dev, &data, PrecisionMode::HalfGnn);

    // ---- Gate 1: coalesced batched forward == per-request forward, bitwise.
    // A spread of requests across the graph, with duplicates.
    let mut requests: Vec<u32> = (0..n as u32).step_by(97).collect();
    requests.push(requests[3]);
    requests.push(0);
    let mut bitwise_values = 0usize;
    for (precision, snap) in
        [(PrecisionMode::Float, &float_snap), (PrecisionMode::HalfGnn, &half_snap)]
    {
        let cfg = ServeConfig { precision, ..ServeConfig::default() };
        let mut batched = ServeEngine::from_snapshot(
            &dev,
            &data.adj,
            &data.features,
            data.spec.feat,
            snap,
            cfg.clone(),
        )
        .expect("engine");
        let all = batched.embed(&requests);
        let mut sequential =
            ServeEngine::from_snapshot(&dev, &data.adj, &data.features, data.spec.feat, snap, cfg)
                .expect("engine");
        for (k, &v) in requests.iter().enumerate() {
            let one = sequential.embed(&[v]);
            assert_eq!(
                bits_of(&all.outputs[k..k + 1]),
                bits_of(&one.outputs[0..1]),
                "{precision:?}: vertex {v} diverged under coalescing"
            );
            bitwise_values += all.outputs[k].len();
        }
        eprintln!(
            "[bench_pr8] {}: {} requests coalesced into one {}-vertex subgraph, bitwise-equal \
             to sequential",
            precision_tag(precision),
            requests.len(),
            all.batch_vertices
        );
    }

    // ---- Gate 2: the f16 cache fits >= 1.9x the vertices of f32.
    let budget = 64 * 1024;
    let width = float_snap.classes;
    let cap_f16 = EmbeddingCache::new(budget, width, CachePrecision::F16).capacity();
    let cap_f32 = EmbeddingCache::new(budget, width, CachePrecision::F32).capacity();
    let cache_ratio = cap_f16 as f64 / cap_f32 as f64;
    assert!(
        cache_ratio >= CACHE_RATIO_GATE,
        "f16/f32 cache capacity ratio {cache_ratio:.3} below gate {CACHE_RATIO_GATE}"
    );
    eprintln!(
        "[bench_pr8] cache: {budget} B budget holds {cap_f16} f16 entries vs {cap_f32} f32 \
         ({cache_ratio:.2}x)"
    );

    // ---- Gate 3: closed loop at 1/2/4 shards, p99 finite everywhere.
    let trace = synth_trace(&TraceConfig {
        seed: 11,
        requests: 2000,
        num_vertices: n,
        mean_gap_us: 40.0,
        hot_fraction: 0.8,
        hot_vertices: 64,
    });
    let mut rows: Vec<LoopRow> = Vec::new();
    for shards in [1usize, 2, 4] {
        let cfg = ServeConfig {
            precision: PrecisionMode::HalfGnn,
            shards,
            cache_bytes: 32 * 1024,
            cache_precision: CachePrecision::F16,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::from_snapshot(
            &dev,
            &data.adj,
            &data.features,
            data.spec.feat,
            &half_snap,
            cfg,
        )
        .expect("engine");
        let timings = engine.serve_trace(&trace);
        assert_eq!(timings.len(), trace.len(), "shards={shards}: dropped requests");
        let span = timings
            .iter()
            .zip(&trace)
            .map(|(t, r)| r.arrival_us + t.total_us())
            .fold(0.0f64, f64::max)
            - trace[0].arrival_us;
        let stats = latency_stats(&timings, span);
        assert!(
            stats.p99_us.is_finite() && stats.p99_us > 0.0,
            "shards={shards}: p99 {} not finite-positive",
            stats.p99_us
        );
        assert!(stats.p50_us <= stats.p99_us, "shards={shards}: p50 above p99");
        assert_eq!(
            engine.stats.cache_hits + engine.stats.coalesced_requests,
            engine.stats.requests,
            "shards={shards}: requests lost between cache and batcher"
        );
        if shards > 1 {
            assert!(engine.stats.halo_bytes > 0, "shards={shards}: no halo traffic charged");
        }
        rows.push(LoopRow {
            shards,
            throughput_rps: stats.throughput_rps,
            p50_us: stats.p50_us,
            p99_us: stats.p99_us,
            hit_rate: stats.hit_rate(),
            halo_mib: engine.stats.halo_bytes as f64 / 1048576.0,
            batches: engine.stats.batches,
            max_batch_vertices: engine.stats.max_batch_vertices,
        });
    }

    // Forward-only footprint: the serving working set is a fraction of the
    // training peak (no grad/optimizer/stash buffers on the path).
    let train_report = train_on(
        &dev,
        &data,
        &TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::Float,
            epochs: 1,
            hidden: 16,
            lr: 0.02,
            seed: 3,
            gcn_norm: GcnNorm::Right,
            ..TrainConfig::default()
        },
    );
    let mut probe_engine = ServeEngine::from_snapshot(
        &dev,
        &data.adj,
        &data.features,
        data.spec.feat,
        &float_snap,
        ServeConfig::default(),
    )
    .expect("engine");
    let probe: Vec<u32> = (0..8u32).collect();
    let inf = probe_engine.inference_footprint(&probe);
    let footprint_ratio = inf.peak_bytes as f64 / train_report.peak_memory_bytes as f64;
    assert!(
        footprint_ratio < 0.5,
        "inference footprint {} is not a fraction of training peak {}",
        inf.peak_bytes,
        train_report.peak_memory_bytes
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr8_serving\",\n");
    json.push_str("  \"device\": \"a100_like (modeled)\",\n");
    json.push_str("  \"graph\": \"G1 (cora)\",\n");
    json.push_str(&format!(
        "  \"batched_equals_sequential_bitwise\": true,\n  \
         \"bitwise_values_compared\": {bitwise_values},\n  \
         \"cache_budget_bytes\": {budget},\n  \"cache_entries_f16\": {cap_f16},\n  \
         \"cache_entries_f32\": {cap_f32},\n  \"cache_capacity_ratio\": {cache_ratio:.4},\n  \
         \"cache_ratio_gate\": {CACHE_RATIO_GATE},\n  \
         \"inference_peak_bytes\": {},\n  \"training_peak_bytes\": {},\n  \
         \"inference_over_training_peak\": {footprint_ratio:.4},\n",
        inf.peak_bytes, train_report.peak_memory_bytes
    ));
    json.push_str("  \"closed_loop\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {:.2}, \
             \"p99_us\": {:.2}, \"cache_hit_rate\": {:.4}, \"halo_mib\": {:.3}, \
             \"batches\": {}, \"max_batch_vertices\": {}}}{}\n",
            r.shards,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            r.hit_rate,
            r.halo_mib,
            r.batches,
            r.max_batch_vertices,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr8.json", &json).expect("write BENCH_pr8.json");
    print!("{json}");
    for r in &rows {
        eprintln!(
            "[bench_pr8] shards={}: {:>8.1} req/s  p50 {:>6.1} us  p99 {:>6.1} us  \
             hits {:>5.1}%  halo {:>6.3} MiB  ({} batches, max {} vtx)",
            r.shards,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            100.0 * r.hit_rate,
            r.halo_mib,
            r.batches,
            r.max_batch_vertices
        );
    }
    eprintln!(
        "[bench_pr8] inference footprint {:.2} MiB vs training peak {:.2} MiB ({:.1}%)",
        inf.peak_bytes as f64 / 1048576.0,
        train_report.peak_memory_bytes as f64 / 1048576.0,
        100.0 * footprint_ratio
    );
}
