//! `bench_pr2` — execution-layer smoke benchmark.
//!
//! One HalfGNN-precision training epoch of GCN and GAT on the synthetic
//! medium graph (hollywood09 stand-in, 4000 vertices), measured four
//! ways:
//!
//! * `sim_modeled_us` — the cost-model backend's analytic epoch time
//!   (modeled A100 cycles, what the figure experiments report);
//! * `sim_wall_us` — wall-clock of the cost-model backend itself
//!   (sequential CTAs, live counters);
//! * `fast_wall_us_1thread` — wall-clock on the fast backend pinned to
//!   one worker: same sequential execution, charging compiled out;
//! * `fast_wall_us_auto` — wall-clock with auto-sized workers
//!   (`HALFGNN_THREADS` / available cores).
//!
//! Two speedups fall out: `charging_off_speedup` (sim wall / fast 1T —
//! what dead counters buy at equal parallelism) and `thread_speedup`
//! (fast 1T / fast auto — what real threads buy; ≈1.0 on a single-core
//! host, where `auto_threads` reports 1). Emits `BENCH_pr2.json` in the
//! current directory; run from the repo root.

use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{train_on, ExecMode, ModelKind, PrecisionMode, TrainConfig};
use halfgnn_sim::DeviceConfig;
use std::time::Instant;

struct Row {
    model: &'static str,
    sim_modeled_us: f64,
    sim_wall_us: f64,
    fast_wall_us_1thread: f64,
    fast_wall_us_auto: f64,
}

/// Best-of-`reps` wall-clock of one full training epoch (minimum is the
/// standard noise-robust estimator for single-core timing).
fn wall_us(
    dev: &DeviceConfig,
    data: &halfgnn_graph::datasets::LoadedDataset,
    cfg: &TrainConfig,
) -> f64 {
    train_on(dev, data, cfg); // warm-up: page faults, lazy init
    let reps = 3;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        train_on(dev, data, cfg);
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn bench_model(model: ModelKind, name: &'static str) -> Row {
    let data = Dataset::hollywood09().load(42);
    let dev = DeviceConfig::a100_like();
    let cfg = TrainConfig {
        model,
        precision: PrecisionMode::HalfGnn,
        epochs: 1,
        hidden: 64,
        ..TrainConfig::default()
    };

    let sim = train_on(&dev, &data, &cfg);
    let sim_wall = wall_us(&dev, &data, &cfg);
    let fast1 =
        wall_us(&dev, &data, &TrainConfig { exec: ExecMode::fast_with_threads(1), ..cfg.clone() });
    let fast_auto = wall_us(&dev, &data, &TrainConfig { exec: ExecMode::fast(), ..cfg.clone() });

    Row {
        model: name,
        sim_modeled_us: sim.epoch_time_us,
        sim_wall_us: sim_wall,
        fast_wall_us_1thread: fast1,
        fast_wall_us_auto: fast_auto,
    }
}

fn main() {
    let threads = rayon::pool::default_threads();
    let rows = [bench_model(ModelKind::Gcn, "gcn"), bench_model(ModelKind::Gat, "gat")];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pr2_execution_layers\",\n");
    json.push_str("  \"graph\": \"hollywood09-synthetic (4000 vertices)\",\n");
    json.push_str("  \"precision\": \"HalfGnn\",\n");
    json.push_str("  \"epochs\": 1,\n");
    json.push_str(&format!("  \"auto_threads\": {threads},\n"));
    json.push_str(
        "  \"note\": \"thread_speedup needs >1 host core; on a 1-core host it is ~1.0 and \
         charging_off_speedup (sim wall vs fast wall at equal threads) is the executor win\",\n",
    );
    json.push_str("  \"models\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let charging_off = r.sim_wall_us / r.fast_wall_us_1thread;
        let thread_speedup = r.fast_wall_us_1thread / r.fast_wall_us_auto;
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"sim_modeled_us\": {:.1}, \"sim_wall_us\": {:.1}, \
             \"fast_wall_us_1thread\": {:.1}, \"fast_wall_us_auto\": {:.1}, \
             \"charging_off_speedup\": {:.2}, \"thread_speedup\": {:.2}}}{}\n",
            r.model,
            r.sim_modeled_us,
            r.sim_wall_us,
            r.fast_wall_us_1thread,
            r.fast_wall_us_auto,
            charging_off,
            thread_speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    print!("{json}");
    for r in &rows {
        eprintln!(
            "[bench_pr2] {}: modeled {:.0} us | sim wall {:.0} us | fast 1T {:.0} us | \
             fast {}T {:.0} us | charging-off {:.2}x | threads {:.2}x",
            r.model,
            r.sim_modeled_us,
            r.sim_wall_us,
            r.fast_wall_us_1thread,
            threads,
            r.fast_wall_us_auto,
            r.sim_wall_us / r.fast_wall_us_1thread,
            r.fast_wall_us_1thread / r.fast_wall_us_auto
        );
    }
}
