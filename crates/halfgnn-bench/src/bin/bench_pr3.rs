//! `bench_pr3` — autotuner benchmark: tuned vs default kernel plans.
//!
//! Two sections, both on a modeled A100:
//!
//! * `kernels` — for a low-skew Erdős–Rényi graph and a power-law
//!   preferential-attachment graph, at feature dims 8/64/256: the plan
//!   `halfgnn-tune` picks for SpMM (discretized scaling) and SDDMM, its
//!   modeled cycles vs the static default plan's, and whether the oracle
//!   accepted both runs. The tuner only ever returns oracle-vetted plans,
//!   so `oracle_clean` is a hard invariant, not an observation.
//! * `training` — one GCN and one GAT epoch on the SBM PubMed stand-in
//!   (low skew) and the preferential-attachment Hollywood09 stand-in
//!   (power law), `tuning: Off` vs `tuning: Auto`: modeled epoch time,
//!   plan-cache counters, and the run's total non-finite conversion count
//!   (must be 0 — tuned plans may not destabilize training).
//!
//! Emits `BENCH_pr3.json` in the current directory; run from the repo
//! root. The headline: on both graph regimes the tuner strictly beats the
//! default SpMM plan for the narrow/medium feature dims (vertex-parallel
//! on the regular graph, deeper staging tiles on the power law), and the
//! epoch time under `Auto` drops accordingly while losses stay inside
//! oracle tolerance.

use halfgnn_graph::datasets::Dataset;
use halfgnn_graph::{gen, Csr};
use halfgnn_kernels::common::ScalePlacement;
use halfgnn_nn::trainer::{train_on, ModelKind, PrecisionMode, TrainConfig, Tuning};
use halfgnn_sim::DeviceConfig;
use halfgnn_tune::{KernelPlan, SddmmPlan, SpmmPlan, Tuner};

struct KernelRow {
    graph: &'static str,
    op: &'static str,
    f: usize,
    plan: String,
    default_cycles: f64,
    tuned_cycles: f64,
}

fn kernel_rows(dev: &DeviceConfig) -> Vec<KernelRow> {
    let graphs = [
        (
            "er_low_skew",
            Csr::from_edges(3_000, 3_000, &gen::erdos_renyi(3_000, 18_000, 7))
                .symmetrized_with_self_loops(),
        ),
        (
            "powerlaw",
            Csr::from_edges(3_000, 3_000, &gen::preferential_attachment(3_000, 10, 7))
                .symmetrized_with_self_loops(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, csr) in &graphs {
        for f in [8usize, 64, 256] {
            let t = Tuner::auto(dev);
            let spmm = t.spmm_plan(csr, f, false, ScalePlacement::Discretized);
            let spmm_default = t
                .vet_spmm(csr, f, false, ScalePlacement::Discretized, &SpmmPlan::default())
                .expect("default SpMM plan must be oracle-clean");
            let spmm_tuned = t
                .vet_spmm(csr, f, false, ScalePlacement::Discretized, &spmm)
                .expect("tuned SpMM plan must be oracle-clean");
            rows.push(KernelRow {
                graph: name,
                op: "spmm",
                f,
                plan: KernelPlan::Spmm(spmm).encode(),
                default_cycles: spmm_default,
                tuned_cycles: spmm_tuned,
            });

            let sddmm = t.sddmm_plan(csr, f);
            let sddmm_default = t
                .vet_sddmm(csr, f, &SddmmPlan::default_for(f))
                .expect("default SDDMM plan must be oracle-clean");
            let sddmm_tuned =
                t.vet_sddmm(csr, f, &sddmm).expect("tuned SDDMM plan must be oracle-clean");
            rows.push(KernelRow {
                graph: name,
                op: "sddmm",
                f,
                plan: KernelPlan::Sddmm(sddmm).encode(),
                default_cycles: sddmm_default,
                tuned_cycles: sddmm_tuned,
            });
        }
    }
    rows
}

struct TrainRow {
    graph: &'static str,
    model: &'static str,
    off_epoch_us: f64,
    auto_epoch_us: f64,
    cache: (u64, u64, u64),
    overflow_events: u64,
}

fn train_rows(dev: &DeviceConfig) -> Vec<TrainRow> {
    let mut rows = Vec::new();
    for (graph, data) in [
        ("sbm_low_skew", Dataset::pubmed().load(42)),
        ("powerlaw", Dataset::hollywood09().load(42)),
    ] {
        for (model, name) in [(ModelKind::Gcn, "gcn"), (ModelKind::Gat, "gat")] {
            let base = TrainConfig {
                model,
                precision: PrecisionMode::HalfGnn,
                epochs: 1,
                hidden: 64,
                ..TrainConfig::default()
            };
            let off = train_on(dev, &data, &base);
            let auto = train_on(dev, &data, &TrainConfig { tuning: Tuning::Auto, ..base });
            let c = auto.tuning_counters.expect("Auto reports counters");
            let overflow_events: u64 = auto.overflow_per_epoch.iter().map(|s| s.nonfinite()).sum();
            rows.push(TrainRow {
                graph,
                model: name,
                off_epoch_us: off.epoch_time_us,
                auto_epoch_us: auto.epoch_time_us,
                cache: (c.hits, c.misses, c.evaluations),
                overflow_events,
            });
        }
    }
    rows
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let kernels = kernel_rows(&dev);
    let training = train_rows(&dev);

    let strict_wins = kernels.iter().filter(|r| r.tuned_cycles < r.default_cycles).count();
    let total_overflow: u64 = training.iter().map(|r| r.overflow_events).sum();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr3_kernel_autotuner\",\n");
    json.push_str("  \"device\": \"a100_like (modeled)\",\n");
    json.push_str(&format!("  \"strict_improvement_ops\": {strict_wins},\n"));
    json.push_str(&format!("  \"total_overflow_events\": {total_overflow},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"op\": \"{}\", \"f\": {}, \"plan\": \"{}\", \
             \"default_cycles\": {:.1}, \"tuned_cycles\": {:.1}, \"speedup\": {:.3}, \
             \"oracle_clean\": true}}{}\n",
            r.graph,
            r.op,
            r.f,
            r.plan,
            r.default_cycles,
            r.tuned_cycles,
            r.default_cycles / r.tuned_cycles,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"training\": [\n");
    for (i, r) in training.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"model\": \"{}\", \"off_epoch_us\": {:.1}, \
             \"auto_epoch_us\": {:.1}, \"speedup\": {:.3}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"candidate_evaluations\": {}, \"overflow_events\": {}}}{}\n",
            r.graph,
            r.model,
            r.off_epoch_us,
            r.auto_epoch_us,
            r.off_epoch_us / r.auto_epoch_us,
            r.cache.0,
            r.cache.1,
            r.cache.2,
            r.overflow_events,
            if i + 1 < training.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr3.json", &json).expect("write BENCH_pr3.json");
    print!("{json}");
    for r in &kernels {
        eprintln!(
            "[bench_pr3] {:>12} {:>5} f={:<3} {:<24} default {:>9.0} cyc | tuned {:>9.0} cyc | {:.3}x",
            r.graph,
            r.op,
            r.f,
            r.plan,
            r.default_cycles,
            r.tuned_cycles,
            r.default_cycles / r.tuned_cycles
        );
    }
    for r in &training {
        eprintln!(
            "[bench_pr3] {:>12} {:>5} epoch: off {:>10.0} us | auto {:>10.0} us | {:.3}x | \
             cache {}h/{}m/{}e | {} overflow",
            r.graph,
            r.model,
            r.off_epoch_us,
            r.auto_epoch_us,
            r.off_epoch_us / r.auto_epoch_us,
            r.cache.0,
            r.cache.1,
            r.cache.2,
            r.overflow_events
        );
    }
    assert!(strict_wins >= 2, "tuner must strictly beat the default somewhere");
    assert_eq!(total_overflow, 0, "tuned training must stay overflow-free");
}
