//! `repro` — regenerate any table or figure from the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   table1 fig1a fig1b fig1c fig5 fig6 fig7 fig8 fig9 fig9aux
//!   fig10 fig11 fig12 fig13 fig14 ablate-discretize ablate-gin-lambda
//!   conversions kernels all
//! ```
//!
//! Run with `--release`; full `fig5`/`fig7` sweeps train on every dataset.

use halfgnn_bench::experiments as exp;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let targets: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if targets.is_empty() {
        eprintln!("usage: repro <experiment|all> [--quick]");
        eprintln!("  experiments: table1 fig1a fig1b fig1c fig5 fig6 fig7 fig8 fig9 fig9aux");
        eprintln!("               fig10 fig11 fig12 fig13 fig14 ablate-discretize ablate-norm");
        eprintln!("               ablate-gin-lambda conversions kernels all");
        exit(2);
    }
    for target in targets {
        run(target, quick);
    }
}

fn run(target: &str, quick: bool) {
    match target {
        "table1" => println!("{}", exp::table1::run(quick)),
        "fig1a" => println!("{}", exp::fig1::fig1a(quick)),
        "fig1b" => println!("{}", exp::fig1::fig1b(quick)),
        "fig1c" => println!("{}", exp::fig1::fig1c(quick)),
        "fig1" => {
            println!("{}", exp::fig1::fig1a(quick));
            println!("{}", exp::fig1::fig1b(quick));
            println!("{}", exp::fig1::fig1c(quick));
        }
        "fig5" => println!("{}", exp::fig5::run(quick)),
        "fig6" => println!("{}", exp::fig6::run(quick)),
        "fig7" | "fig8" | "fig78" => {
            for t in exp::fig7_8::run(quick) {
                println!("{t}");
            }
        }
        "fig9" => println!("{}", exp::fig9::run(quick)),
        "fig9aux" => println!("{}", exp::fig9::spmm_vs_float(quick)),
        "fig10" => println!("{}", exp::fig10_11::fig10(quick)),
        "fig11" => println!("{}", exp::fig10_11::fig11(quick)),
        "fig12" => println!("{}", exp::fig12::run(quick)),
        "fig13" => println!("{}", exp::fig13::run(quick)),
        "fig14" => println!("{}", exp::fig14::run(quick)),
        "ablate-discretize" => println!("{}", exp::ablations::discretize(quick)),
        "ablate-norm" => println!("{}", exp::ablations::gcn_norms(quick)),
        "ablate-batch" => println!("{}", exp::ablations::batch_size(quick)),
        "ablate-paradigm" => println!("{}", exp::ablations::paradigms(quick)),
        "ablate-gin-lambda" => println!("{}", exp::ablations::gin_lambda(quick)),
        "conversions" => println!("{}", exp::conversions::run(quick)),
        "kernels" => {
            // Kernel-level figures only (fast path for calibration).
            println!("{}", exp::fig9::run(quick));
            println!("{}", exp::fig10_11::fig10(quick));
            println!("{}", exp::fig10_11::fig11(quick));
            println!("{}", exp::fig12::run(quick));
            println!("{}", exp::fig13::run(quick));
            println!("{}", exp::fig14::run(quick));
        }
        "all" => {
            for t in [
                "table1",
                "fig1a",
                "fig1b",
                "fig1c",
                "fig5",
                "fig6",
                "fig78",
                "fig9",
                "fig9aux",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "ablate-discretize",
                "ablate-norm",
                "ablate-batch",
                "ablate-paradigm",
                "ablate-gin-lambda",
                "conversions",
            ] {
                run(t, quick);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            exit(2);
        }
    }
}
