//! `bench_pr7` — neighbor-sampled mini-batch training + delta-CSR
//! streaming ingestion.
//!
//! One sweep on the modeled A100 over the G1-class graph (Cora): GCN and
//! SAGE, float vs. HalfGNN, full-batch against fanout-sampled mini-batch,
//! plus a streaming run that inserts edges mid-training through the
//! DeltaCsr overlay (no CSR rebuild) with the tuner on.
//!
//! Hard gates, asserted not observed:
//!
//! * accuracy: every sampled run lands within ε = 0.08 of its full-batch
//!   counterpart's test accuracy, and half-precision sampled runs are
//!   oracle-clean — zero overflow events, no NaN epoch;
//! * memory: the per-batch working set (peak minus the resident global
//!   feature table + CSR) is strictly below the full-batch peak at every
//!   config;
//! * streaming: every requested edge is ingested by the overlay, and the
//!   post-delta plan-cache hit rate is > 0.5 — KernelKey's log2-nnz
//!   buckets absorb a small delta without re-tuning.
//!
//! Emits `BENCH_pr7.json` in the current directory; run from the repo
//! root.

use halfgnn_graph::datasets::Dataset;
use halfgnn_nn::trainer::{train_on, ModelKind, PrecisionMode, TrainConfig, Tuning};
use halfgnn_sim::DeviceConfig;

const EPS: f32 = 0.08;

struct Row {
    model: ModelKind,
    precision: PrecisionMode,
    full_accuracy: f32,
    sampled_accuracy: f32,
    full_peak_bytes: u64,
    sampled_peak_bytes: u64,
    batch_working_set_bytes: u64,
    batches_per_epoch: usize,
    mean_batch_vertices: f64,
    max_batch_vertices: usize,
}

fn precision_tag(p: PrecisionMode) -> &'static str {
    match p {
        PrecisionMode::Float => "float",
        PrecisionMode::HalfGnn => "halfgnn",
        PrecisionMode::HalfNaive => "halfnaive",
        PrecisionMode::HalfGnnNoDiscretize => "nodiscretize",
        PrecisionMode::I8 => "i8",
    }
}

fn model_tag(m: ModelKind) -> &'static str {
    match m {
        ModelKind::Gcn => "gcn",
        ModelKind::Gat => "gat",
        ModelKind::Gin => "gin",
        ModelKind::Sage => "sage",
    }
}

fn main() {
    let dev = DeviceConfig::a100_like();
    let data = Dataset::by_id("G1").expect("G1 in registry").load(42);
    let resident_global = (data.num_vertices() * data.spec.feat * 2
        + (data.num_edges() + data.num_vertices() + 1) * 4) as u64;
    let mut rows: Vec<Row> = Vec::new();

    for model in [ModelKind::Gcn, ModelKind::Sage] {
        for precision in [PrecisionMode::Float, PrecisionMode::HalfGnn] {
            let base = TrainConfig {
                model,
                precision,
                epochs: 20,
                hidden: 16,
                lr: 0.02,
                seed: 3,
                ..TrainConfig::default()
            };
            let full = train_on(&dev, &data, &base);
            let mb =
                train_on(&dev, &data, &TrainConfig { batch_size: Some(128), fanout: 10, ..base });

            // Gate 1: sampled training reaches full-batch accuracy ± ε,
            // oracle-clean in half precision.
            assert!(
                (full.test_accuracy - mb.test_accuracy).abs() < EPS,
                "{model:?}/{precision:?}: full {} vs sampled {}",
                full.test_accuracy,
                mb.test_accuracy
            );
            assert!(mb.nan_epoch.is_none(), "{model:?}/{precision:?}: NaN epoch");
            assert!(
                mb.overflow_per_epoch.iter().all(|s| s.is_clean()),
                "{model:?}/{precision:?}: overflow events in sampled run"
            );

            // Gate 2: the batch working set undercuts the full-batch peak.
            let working_set = mb.peak_memory_bytes.saturating_sub(resident_global);
            assert!(
                working_set < full.peak_memory_bytes,
                "{model:?}/{precision:?}: batch working set {} vs full peak {}",
                working_set,
                full.peak_memory_bytes
            );

            let s = mb.sampling.expect("mini-batch runs report sampling");
            rows.push(Row {
                model,
                precision,
                full_accuracy: full.test_accuracy,
                sampled_accuracy: mb.test_accuracy,
                full_peak_bytes: full.peak_memory_bytes,
                sampled_peak_bytes: mb.peak_memory_bytes,
                batch_working_set_bytes: working_set,
                batches_per_epoch: s.batches_per_epoch,
                mean_batch_vertices: s.mean_batch_vertices,
                max_batch_vertices: s.max_batch_vertices,
            });
        }
    }

    // Gate 3: streaming ingestion through the delta overlay, tuner on.
    let stream = train_on(
        &dev,
        &data,
        &TrainConfig {
            model: ModelKind::Gcn,
            precision: PrecisionMode::HalfGnn,
            epochs: 10,
            hidden: 16,
            lr: 0.02,
            seed: 3,
            batch_size: Some(128),
            fanout: 10,
            stream_edges: 200,
            tuning: Tuning::Auto,
            ..TrainConfig::default()
        },
    );
    assert!(stream.nan_epoch.is_none(), "stream run hit NaN");
    assert!(
        stream.overflow_per_epoch.iter().all(|s| s.is_clean()),
        "overflow events in stream run"
    );
    let ss = stream.sampling.expect("sampling summary");
    assert_eq!(ss.streamed_edges, 200, "overlay dropped requested edges");
    let stream_epoch = ss.stream_epoch.expect("stream run records the insert epoch");
    let post = ss.post_stream_tuning.expect("tuned stream run measures the post-delta cache");
    let hit_rate = post.hits as f64 / (post.hits + post.misses).max(1) as f64;
    assert!(hit_rate > 0.5, "post-delta plan-cache hit rate {hit_rate:.2} <= 0.5 ({post:?})");

    let accuracy_gap_max =
        rows.iter().map(|r| (r.full_accuracy - r.sampled_accuracy).abs()).fold(0.0f32, f32::max);
    let working_set_ratio_max = rows
        .iter()
        .map(|r| r.batch_working_set_bytes as f64 / r.full_peak_bytes as f64)
        .fold(0.0f64, f64::max);

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr7_minibatch_streaming\",\n");
    json.push_str("  \"device\": \"a100_like (modeled)\",\n");
    json.push_str("  \"graph\": \"G1 (cora)\",\n");
    json.push_str(&format!(
        "  \"epsilon\": {EPS},\n  \"accuracy_gap_max\": {accuracy_gap_max:.4},\n  \
         \"sampled_overflow_events\": 0,\n  \
         \"batch_working_set_over_full_peak_max\": {working_set_ratio_max:.4},\n  \
         \"streamed_edges\": {},\n  \"stream_epoch\": {stream_epoch},\n  \
         \"post_delta_cache_hits\": {},\n  \"post_delta_cache_misses\": {},\n  \
         \"post_delta_hit_rate\": {hit_rate:.4},\n",
        ss.streamed_edges, post.hits, post.misses
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"precision\": \"{}\", \
             \"full_test_accuracy\": {:.4}, \"sampled_test_accuracy\": {:.4}, \
             \"full_peak_bytes\": {}, \"sampled_peak_bytes\": {}, \
             \"batch_working_set_bytes\": {}, \"batches_per_epoch\": {}, \
             \"mean_batch_vertices\": {:.0}, \"max_batch_vertices\": {}}}{}\n",
            model_tag(r.model),
            precision_tag(r.precision),
            r.full_accuracy,
            r.sampled_accuracy,
            r.full_peak_bytes,
            r.sampled_peak_bytes,
            r.batch_working_set_bytes,
            r.batches_per_epoch,
            r.mean_batch_vertices,
            r.max_batch_vertices,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pr7.json", &json).expect("write BENCH_pr7.json");
    print!("{json}");
    for r in &rows {
        eprintln!(
            "[bench_pr7] {:<4} {:<8} full {:.4} -> sampled {:.4}  \
             working set {:>6.2} MiB vs full peak {:>6.2} MiB  ({} batches/epoch, max {} vtx)",
            model_tag(r.model),
            precision_tag(r.precision),
            r.full_accuracy,
            r.sampled_accuracy,
            r.batch_working_set_bytes as f64 / 1048576.0,
            r.full_peak_bytes as f64 / 1048576.0,
            r.batches_per_epoch,
            r.max_batch_vertices
        );
    }
    eprintln!(
        "[bench_pr7] stream: {} edges at epoch {stream_epoch}, post-delta cache \
         {}/{} hit ({:.0}%)",
        ss.streamed_edges,
        post.hits,
        post.hits + post.misses,
        hit_rate * 100.0
    );
}
