//! Execution backends: *what* a kernel computes vs. *how* it is executed
//! and measured.
//!
//! Every kernel in this workspace is a closure over a [`Cta`]; the closure
//! does the functional work (ordinary Rust over slices) and *reports* its
//! hardware-visible actions through charging calls. That report is only
//! needed when the run's purpose is measurement. This module splits the
//! two concerns behind the [`Executor`] trait:
//!
//! * [`SimExecutor`] — the cost-model path. CTAs run sequentially on the
//!   caller's thread with live counters, exactly as the simulator always
//!   has: per-warp counters feed the analytical timing model and the
//!   NCU-style utilization numbers. Sequential execution is load-bearing,
//!   not an implementation shortcut — overflow provenance
//!   (`halfgnn-half::overflow`) records through thread-local state on the
//!   caller's thread, and byte-for-byte reproducibility of modeled cycles
//!   requires a fixed reduction order.
//! * [`FastExecutor`] — the throughput path. CTAs are distributed across
//!   real OS threads (the `vendor/rayon` scoped pool) with **dead**
//!   counters: every charging call early-returns, and lazily-constructed
//!   charging arguments (gather address iterators, feature-row walks) are
//!   never consumed. The returned [`KernelStats`] carries measured
//!   wall-clock in `time_us` and zero modeled cycles.
//!
//! Both executors observe the same determinism contract: per-CTA results
//! are returned in CTA order, so `WriteList` commits — and therefore all
//! Half outputs — are bit-identical between backends and across thread
//! counts.

use crate::config::DeviceConfig;
use crate::counters::KernelStats;
use crate::launch::{Cta, LaunchParams};

/// How kernel launches on a device execute: under the cost model, or at
/// full multi-core throughput.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Cost-model simulation: sequential CTAs, live counters, modeled
    /// cycles. The default, and the mode every figure/oracle test uses.
    #[default]
    Sim,
    /// Real-threads fast path: CTAs on OS threads, charging compiled to
    /// no-ops, wall-clock stats. `threads == 0` means auto-size from
    /// `HALFGNN_THREADS` / `available_parallelism()`.
    Fast {
        /// Worker threads; 0 = auto.
        threads: usize,
    },
}

impl ExecMode {
    /// Fast mode with auto-sized threads.
    pub fn fast() -> ExecMode {
        ExecMode::Fast { threads: 0 }
    }

    /// Fast mode pinned to exactly `threads` workers (useful for
    /// determinism tests and 1-thread baselines).
    pub fn fast_with_threads(threads: usize) -> ExecMode {
        ExecMode::Fast { threads }
    }

    /// True for either fast variant.
    pub fn is_fast(&self) -> bool {
        matches!(self, ExecMode::Fast { .. })
    }
}

/// An execution backend: runs a kernel closure over a CTA grid and decides
/// how (and whether) the run is measured.
///
/// The `run` method is generic over the kernel closure, so the trait is not
/// object-safe; [`crate::launch::launch`] dispatches over the concrete
/// executors by matching [`DeviceConfig::exec`].
pub trait Executor {
    /// The device this executor launches onto.
    fn dev(&self) -> &DeviceConfig;

    /// Whether charging calls on this backend record anything. When false,
    /// kernels may skip building charging arguments entirely.
    fn counters_live(&self) -> bool;

    /// Execute `kernel` once per CTA, returning per-CTA results **in CTA
    /// order** plus this backend's notion of launch statistics.
    fn run<R, F>(&self, name: &str, params: LaunchParams, kernel: F) -> (Vec<R>, KernelStats)
    where
        R: Send,
        F: Fn(&mut Cta) -> R + Sync;
}

/// The cost-model backend: sequential CTAs with live counters and
/// analytical timing. Behavior-preserving refactor of the original
/// `launch` body — modeled counters and cycles are byte-for-byte what the
/// pre-refactor simulator produced.
pub struct SimExecutor<'d> {
    dev: &'d DeviceConfig,
}

impl<'d> SimExecutor<'d> {
    /// Cost-model executor for `dev`.
    pub fn new(dev: &'d DeviceConfig) -> SimExecutor<'d> {
        SimExecutor { dev }
    }
}

impl Executor for SimExecutor<'_> {
    fn dev(&self) -> &DeviceConfig {
        self.dev
    }

    fn counters_live(&self) -> bool {
        true
    }

    fn run<R, F>(&self, name: &str, params: LaunchParams, kernel: F) -> (Vec<R>, KernelStats)
    where
        R: Send,
        F: Fn(&mut Cta) -> R + Sync,
    {
        let dev = self.dev;
        let mut results = Vec::with_capacity(params.num_ctas);
        let mut cta_times = Vec::with_capacity(params.num_ctas);
        let mut totals = crate::counters::WarpCounters::default();
        let mut busy_sum = 0.0;
        let mut total_sum = 0.0;
        for cta_id in 0..params.num_ctas {
            let mut cta = Cta::new(cta_id, dev, params.warps_per_cta, true);
            results.push(kernel(&mut cta));
            let m = cta.measure();
            cta_times.push(m.cycles);
            totals.merge(&m.merged);
            busy_sum += m.busy;
            total_sum += m.total;
        }
        let stats = KernelStats::from_ctas(
            name,
            dev,
            params.warps_per_cta,
            &cta_times,
            totals,
            busy_sum,
            total_sum,
        );
        (results, stats)
    }
}

/// The throughput backend: CTAs on real OS threads, dead counters,
/// wall-clock stats. Results stay in CTA order (the pool sorts by input
/// index), so outputs are bit-identical to [`SimExecutor`] for any thread
/// count.
pub struct FastExecutor<'d> {
    dev: &'d DeviceConfig,
    threads: usize,
}

impl<'d> FastExecutor<'d> {
    /// Fast executor for `dev` with `threads` workers (0 = auto).
    pub fn new(dev: &'d DeviceConfig, threads: usize) -> FastExecutor<'d> {
        FastExecutor { dev, threads }
    }

    /// The resolved worker count this executor will use.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            rayon::pool::default_threads()
        } else {
            self.threads
        }
    }
}

impl Executor for FastExecutor<'_> {
    fn dev(&self) -> &DeviceConfig {
        self.dev
    }

    fn counters_live(&self) -> bool {
        false
    }

    fn run<R, F>(&self, name: &str, params: LaunchParams, kernel: F) -> (Vec<R>, KernelStats)
    where
        R: Send,
        F: Fn(&mut Cta) -> R + Sync,
    {
        let dev = self.dev;
        let start = std::time::Instant::now();
        let cta_ids: Vec<usize> = (0..params.num_ctas).collect();
        let results = rayon::pool::parallel_map(cta_ids, self.threads, |_, cta_id| {
            let mut cta = Cta::new(cta_id, dev, params.warps_per_cta, false);
            kernel(&mut cta)
        });
        let stats =
            KernelStats::wallclock(name, params.num_ctas, params.warps_per_cta, start.elapsed());
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_defaults_to_sim() {
        assert_eq!(ExecMode::default(), ExecMode::Sim);
        assert!(!ExecMode::Sim.is_fast());
        assert!(ExecMode::fast().is_fast());
        assert_eq!(ExecMode::fast_with_threads(3), ExecMode::Fast { threads: 3 });
    }

    #[test]
    fn sim_executor_counters_are_live() {
        let dev = DeviceConfig::tiny();
        let exec = SimExecutor::new(&dev);
        assert!(exec.counters_live());
        let (r, s) = exec.run("k", LaunchParams { num_ctas: 3, warps_per_cta: 1 }, |cta| {
            cta.warp(0).float_ops(10);
            cta.id
        });
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(s.totals.float_ops, 30);
        assert!(s.cycles > 0.0);
    }

    #[test]
    fn fast_executor_counters_are_dead() {
        let dev = DeviceConfig::tiny();
        let exec = FastExecutor::new(&dev, 2);
        assert!(!exec.counters_live());
        let (r, s) = exec.run("k", LaunchParams { num_ctas: 5, warps_per_cta: 1 }, |cta| {
            cta.warp(0).float_ops(10);
            cta.warp(0).load_contiguous(0, 32, 4);
            cta.id * 2
        });
        assert_eq!(r, vec![0, 2, 4, 6, 8]);
        assert_eq!(s.totals.float_ops, 0);
        assert_eq!(s.totals.load_instrs, 0);
        assert_eq!(s.cycles, 0.0);
        assert!(s.time_us >= 0.0);
    }

    #[test]
    fn fast_executor_results_match_sim_for_any_thread_count() {
        let dev = DeviceConfig::tiny();
        let params = LaunchParams { num_ctas: 37, warps_per_cta: 2 };
        let kernel = |cta: &mut Cta| {
            let mut w = cta.warp(0);
            w.half2_ops(4);
            cta.id * cta.id
        };
        let (want, _) = SimExecutor::new(&dev).run("k", params, kernel);
        for threads in [1, 2, 0] {
            let (got, _) = FastExecutor::new(&dev, threads).run("k", params, kernel);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn fast_executor_resolves_auto_threads() {
        let dev = DeviceConfig::tiny();
        assert!(FastExecutor::new(&dev, 0).threads() >= 1);
        assert_eq!(FastExecutor::new(&dev, 5).threads(), 5);
    }
}
