//! A SIMT GPU **cost-model simulator**.
//!
//! The paper's kernels target an NVIDIA A100; this crate is the
//! substitution that lets them run and be *measured* on a CPU-only host.
//! Kernels execute functionally as ordinary Rust while reporting their
//! hardware-visible actions — global loads/stores, arithmetic by precision
//! path, shuffle rounds, shared memory traffic, atomics — to a per-warp
//! counter set. An analytical timing model turns the counters into modeled
//! cycles and the NCU-style utilization percentages that Figs. 10-11 of
//! the paper report.
//!
//! Execution and measurement are separated behind the [`exec::Executor`]
//! trait: [`exec::SimExecutor`] runs CTAs sequentially with live counters
//! (the cost-model path above), while [`exec::FastExecutor`] distributes
//! CTAs across real OS threads with charging compiled to no-ops and
//! reports measured wall-clock instead of modeled cycles. Select per
//! device via [`config::DeviceConfig::exec`] ([`exec::ExecMode`]).
//!
//! What the model captures (because the paper's claims rest on it):
//!
//! * **Memory coalescing** — every warp access is decomposed into 32-byte
//!   DRAM sectors. A warp of 2-byte scalar half loads moves 64 B per
//!   instruction (the paper's §4.1 observation); `half2` restores 128 B;
//!   `half8` reaches 512 B per instruction.
//! * **Issue cost & latency hiding** — loads have a per-instruction issue
//!   cost and a latency that is hidden in proportion to how many loads are
//!   in flight between barriers. Shuffle-based reductions are barriers, so
//!   fewer reduction rounds (half8 SDDMM) means better hiding (§5.1).
//! * **Arithmetic throughput by path** — Fig. 3: implicit-promotion half
//!   arithmetic pays conversion instructions, half intrinsics match float
//!   throughput, `half2` doubles it.
//! * **Atomics** — a 2-byte atomic is a CAS loop on the containing word,
//!   several times costlier than a float atomic, and serializes under
//!   conflicts (§5.2, Fig. 13).
//!
//! What it does not capture: caches beyond first-order reuse (kernels
//! charge shared-memory reuse explicitly), instruction scheduling detail,
//! and ECC/refresh effects. Absolute times are *modeled*; the paper-shape
//! comparisons derive from counter ratios, which are exact.

pub mod config;
pub mod counters;
pub mod exec;
pub mod interconnect;
pub mod latency;
pub mod launch;
pub mod memory;
pub mod warp;

pub use config::{CostModel, DeviceConfig};
pub use counters::{KernelStats, WarpCounters};
pub use exec::{ExecMode, Executor, FastExecutor, SimExecutor};
pub use interconnect::{
    CommEvent, CommsLedger, Interconnect, LinkStat, OverlapTimeline, Topology, TrafficClass,
};
pub use latency::{latency_stats, synth_trace, LatencyStats, Request, RequestTiming, TraceConfig};
pub use launch::{launch, Cta, LaunchParams};
pub use warp::{AtomicKind, WarpCtx};
