//! Device geometry and the cost model.
//!
//! Constants are calibrated so the *ratios* between kernel designs land
//! where the paper measured them on an A100 (see EXPERIMENTS.md); absolute
//! cycle counts are a model, not a promise.

use crate::exec::ExecMode;

/// Per-action costs in cycles (per warp instruction unless noted).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cycles per 32-byte DRAM sector moved by one warp — models the
    /// LSU/L2 throughput a warp can sustain.
    pub sector_cycles: f64,
    /// Issue cost of one global load instruction.
    pub load_issue: f64,
    /// Issue cost of one global store instruction.
    pub store_issue: f64,
    /// Global memory latency (hidden in proportion to loads in flight).
    pub mem_latency: f64,
    /// Maximum overlapped outstanding loads per warp (MLP limit).
    pub mlp_max: f64,
    /// How much of one warp's exposed latency co-resident warps hide.
    pub latency_hiding: f64,
    /// One warp float instruction (32 lanes).
    pub float_op: f64,
    /// One warp half-intrinsic instruction (32 lanes; same as float —
    /// Fig. 3b).
    pub half_op: f64,
    /// One warp half2 instruction (64 values — Fig. 3c doubles throughput).
    pub half2_op: f64,
    /// One h2f/f2h conversion instruction (the Fig. 3a overhead).
    pub convert_op: f64,
    /// One warp-wide shuffle round, including its implicit barrier.
    pub shuffle: f64,
    /// One warp shared-memory access.
    pub smem: f64,
    /// One CTA-wide __syncthreads().
    pub cta_barrier: f64,
    /// One warp atomic instruction on a 32-bit word (f32).
    pub atomic_f32: f64,
    /// Multiplier for 16-bit atomics (CAS loop on the containing word).
    pub atomic_f16_mult: f64,
    /// Contention saturation for *native* 32-bit atomics: the L2 atomic
    /// unit pipelines same-address adds, so serialization stops growing
    /// beyond this factor.
    pub atomic_f32_conflict_cap: f64,
    /// Contention saturation for CAS-loop 16-bit atomics: retries degrade
    /// far longer under contention before the L2 scheduler levels off.
    pub atomic_f16_conflict_cap: f64,
    /// Fixed kernel launch overhead in cycles.
    pub launch_overhead: f64,
    /// Slowdown factor from scheduler sharing at full occupancy: resident
    /// warps per SM divided by scheduler count (8 warps / 4 schedulers on
    /// an A100-like config).
    pub occupancy_stretch: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            sector_cycles: 4.0,
            load_issue: 8.0,
            store_issue: 6.0,
            mem_latency: 320.0,
            mlp_max: 8.0,
            latency_hiding: 4.0,
            float_op: 1.0,
            half_op: 1.0,
            half2_op: 1.0,
            convert_op: 1.0,
            shuffle: 6.0,
            smem: 1.0,
            cta_barrier: 20.0,
            atomic_f32: 10.0,
            atomic_f16_mult: 8.0,
            atomic_f32_conflict_cap: 4.0,
            atomic_f16_conflict_cap: 4.0,
            launch_overhead: 1500.0,
            occupancy_stretch: 2.0,
        }
    }
}

/// Simulated device geometry.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub num_sms: usize,
    /// Concurrently resident CTAs per SM (occupancy).
    pub ctas_per_sm: usize,
    /// Threads per warp (always 32 on NVIDIA hardware).
    pub warp_size: usize,
    /// Core clock in GHz (converts modeled cycles to time).
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth in bytes per core cycle.
    pub dram_bytes_per_cycle: f64,
    /// DRAM sector size in bytes.
    pub sector_bytes: u64,
    /// Per-action costs.
    pub cost: CostModel,
    /// Execution backend for launches on this device: cost-model
    /// simulation (default) or the real-threads fast path. The mode rides
    /// the device handle so kernel signatures stay execution-agnostic.
    pub exec: ExecMode,
}

impl DeviceConfig {
    /// An A100-40GB-like device: 108 SMs at 1.41 GHz, ~1555 GB/s DRAM.
    pub fn a100_like() -> DeviceConfig {
        DeviceConfig {
            name: "A100-like",
            num_sms: 108,
            ctas_per_sm: 2,
            warp_size: 32,
            clock_ghz: 1.41,
            // 1555 GB/s at 1.41 GHz ≈ 1103 B/cycle.
            dram_bytes_per_cycle: 1100.0,
            sector_bytes: 32,
            cost: CostModel::default(),
            exec: ExecMode::Sim,
        }
    }

    /// A deliberately tiny device for unit tests (2 SMs, 1 CTA each): wave
    /// effects become visible with small grids.
    pub fn tiny() -> DeviceConfig {
        DeviceConfig {
            name: "tiny",
            num_sms: 2,
            ctas_per_sm: 1,
            warp_size: 32,
            clock_ghz: 1.0,
            dram_bytes_per_cycle: 64.0,
            sector_bytes: 32,
            cost: CostModel::default(),
            exec: ExecMode::Sim,
        }
    }

    /// The same device with a different execution backend.
    pub fn with_exec(mut self, exec: ExecMode) -> DeviceConfig {
        self.exec = exec;
        self
    }

    /// The same device on the real-threads fast path with auto-sized
    /// workers: charging becomes a no-op and launch stats report measured
    /// wall-clock instead of modeled cycles.
    pub fn fast(self) -> DeviceConfig {
        self.with_exec(ExecMode::fast())
    }

    /// Concurrent CTA slots across the device (one scheduling "wave").
    pub fn wave_slots(&self) -> usize {
        self.num_sms * self.ctas_per_sm
    }

    /// Convert modeled cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_preset_sane() {
        let d = DeviceConfig::a100_like();
        assert_eq!(d.num_sms, 108);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.wave_slots(), 216);
        // 1410 cycles = 1 us.
        assert!((d.cycles_to_us(1410.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cost_model_half2_not_slower_than_half() {
        let c = CostModel::default();
        // half2 processes 2x the values per instruction at equal cost:
        // the Fig. 3 throughput ordering.
        assert!(c.half2_op <= c.half_op);
        assert!(c.atomic_f16_mult > 1.0);
    }
}
