//! Request-latency accounting for the serving path.
//!
//! Like everything else in this simulator, latency here is **modeled, not
//! measured**: a request's latency is the sum of three modeled components
//! — queueing delay behind the accelerator, remote-shard halo-fetch time
//! from the [`crate::Interconnect`] link model, and kernel time from the
//! cost model — so p50/p99 numbers are bitwise-reproducible across hosts
//! and thread counts. No wall clocks anywhere.
//!
//! The synthetic trace generator follows the sampler's keyed counter-RNG
//! discipline: every draw is a pure function of `(seed, request index)`
//! through splitmix64, so the i-th request is the same no matter how the
//! trace is consumed. Vertex choice is skewed — a configurable fraction of
//! requests lands on a small hot set, which is what gives an LRU embedding
//! cache something to hit.

/// One inference request in a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Vertex whose embedding is requested.
    pub vertex: u32,
    /// Modeled arrival time, µs from trace start. Non-decreasing in a
    /// generated trace.
    pub arrival_us: f64,
}

/// Parameters for [`synth_trace`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// RNG key; same seed ⇒ bitwise-identical trace.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Vertex id space to draw from (the serving graph's vertex count).
    pub num_vertices: usize,
    /// Mean inter-arrival gap in µs (arrival rate = 1e6 / gap requests/s).
    pub mean_gap_us: f64,
    /// Fraction of requests directed at the hot set, in `[0, 1]`.
    pub hot_fraction: f64,
    /// Size of the hot set (vertices `0..hot_vertices` after keying).
    pub hot_vertices: usize,
}

const SM64_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(SM64_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Keyed draw: a u64 that depends only on `(seed, idx, salt)`.
fn draw(seed: u64, idx: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ idx) ^ salt)
}

/// Uniform f64 in `[0, 1)` from a keyed draw (53 mantissa bits).
fn unit(seed: u64, idx: u64, salt: u64) -> f64 {
    (draw(seed, idx, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generate a deterministic synthetic request trace. Arrivals are spaced
/// by `mean_gap_us * (0.5 + u)` with `u` uniform in `[0, 1)` — mean gap
/// exactly `mean_gap_us`, bounded jitter, strictly increasing times.
pub fn synth_trace(cfg: &TraceConfig) -> Vec<Request> {
    assert!(cfg.num_vertices > 0, "trace needs a non-empty vertex space");
    let hot = cfg.hot_vertices.clamp(1, cfg.num_vertices);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests as u64 {
        t += cfg.mean_gap_us * (0.5 + unit(cfg.seed, i, 1));
        let is_hot = unit(cfg.seed, i, 2) < cfg.hot_fraction;
        let space = if is_hot { hot } else { cfg.num_vertices } as u64;
        // Multiply-shift bound: unbiased enough for a synthetic workload
        // and branch-free deterministic.
        let v = ((draw(cfg.seed, i, 3) as u128 * space as u128) >> 64) as u32;
        out.push(Request { vertex: v, arrival_us: t });
    }
    out
}

/// Modeled timing breakdown for one served request.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTiming {
    /// Time spent queued before its batch launched, µs.
    pub queue_us: f64,
    /// Remote-shard halo feature fetch time for its batch, µs.
    pub fetch_us: f64,
    /// Kernel time of its batch (or cache-lookup cost on a hit), µs.
    pub kernel_us: f64,
    /// Served from the embedding cache without touching the accelerator.
    pub cache_hit: bool,
}

impl RequestTiming {
    /// End-to-end modeled latency, µs.
    pub fn total_us(&self) -> f64 {
        self.queue_us + self.fetch_us + self.kernel_us
    }
}

/// Aggregate latency statistics over a served trace.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    pub requests: usize,
    pub cache_hits: usize,
    pub p50_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
    pub mean_us: f64,
    /// Modeled sustained throughput: requests per second over the span
    /// from first arrival to last completion.
    pub throughput_rps: f64,
}

impl LatencyStats {
    pub fn hit_rate(&self) -> f64 {
        self.cache_hits as f64 / self.requests.max(1) as f64
    }
}

/// Nearest-rank percentile over sorted samples: the smallest sample with
/// at least `q` of the mass at or below it.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summarize per-request timings. `span_us` is the interval from first
/// arrival to last completion (used for throughput); pass 0 for an empty
/// trace.
pub fn latency_stats(timings: &[RequestTiming], span_us: f64) -> LatencyStats {
    let mut totals: Vec<f64> = timings.iter().map(|t| t.total_us()).collect();
    totals.sort_by(f64::total_cmp);
    let sum: f64 = totals.iter().sum();
    let n = totals.len();
    LatencyStats {
        requests: n,
        cache_hits: timings.iter().filter(|t| t.cache_hit).count(),
        p50_us: percentile(&totals, 0.50),
        p99_us: percentile(&totals, 0.99),
        max_us: totals.last().copied().unwrap_or(0.0),
        mean_us: if n == 0 { 0.0 } else { sum / n as f64 },
        throughput_rps: if span_us > 0.0 { n as f64 * 1e6 / span_us } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig {
            seed: 9,
            requests: 500,
            num_vertices: 1000,
            mean_gap_us: 40.0,
            hot_fraction: 0.8,
            hot_vertices: 25,
        }
    }

    #[test]
    fn trace_is_deterministic_and_strictly_increasing() {
        let a = synth_trace(&cfg());
        let b = synth_trace(&cfg());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_us < w[1].arrival_us));
        assert!(a.iter().all(|r| (r.vertex as usize) < 1000));
    }

    #[test]
    fn trace_mean_gap_is_close_to_requested() {
        let t = synth_trace(&cfg());
        let mean = t.last().unwrap().arrival_us / t.len() as f64;
        assert!((mean - 40.0).abs() < 4.0, "mean gap {mean}");
    }

    #[test]
    fn hot_fraction_skews_vertex_choice() {
        let t = synth_trace(&cfg());
        let hot = t.iter().filter(|r| r.vertex < 25).count();
        // ~80% requested hot; uniform background adds a sliver.
        assert!(hot as f64 > 0.7 * t.len() as f64, "hot draws {hot}/{}", t.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_trace(&cfg());
        let b = synth_trace(&TraceConfig { seed: 10, ..cfg() });
        assert_ne!(a, b);
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let timings: Vec<RequestTiming> = (1..=100)
            .map(|i| RequestTiming { kernel_us: i as f64, ..Default::default() })
            .collect();
        let s = latency_stats(&timings, 100.0 * 1e6);
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-12);
        assert!((s.throughput_rps - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let s = latency_stats(&[], 0.0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.throughput_rps, 0.0);
    }
}
