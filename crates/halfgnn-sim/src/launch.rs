//! Grid launch: execute a kernel closure once per CTA and produce
//! [`KernelStats`] through the execution backend selected on the device
//! ([`crate::exec`]).
//!
//! The kernel closure receives a [`Cta`] for cost charging and returns an
//! arbitrary per-CTA value (typically a write list); the caller commits
//! those sequentially in CTA order, which keeps results deterministic and
//! lets conflicting-write protocols (staging buffer + follow-up kernel) be
//! expressed safely — on every backend and at every thread count.

use crate::config::DeviceConfig;
use crate::counters::{KernelStats, WarpCounters};
use crate::exec::{ExecMode, Executor, FastExecutor, SimExecutor};
use crate::warp::WarpCtx;

/// Grid geometry of a launch.
#[derive(Clone, Copy, Debug)]
pub struct LaunchParams {
    /// Number of CTAs.
    pub num_ctas: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
}

/// One cooperative thread array during execution: owns per-warp counters
/// and hands out warp charging handles.
pub struct Cta<'d> {
    /// This CTA's index in the grid.
    pub id: usize,
    dev: &'d DeviceConfig,
    warp_counters: Vec<WarpCounters>,
    scratch: Vec<u64>,
    /// Whether charging records anything. `false` on the fast path: every
    /// charging call early-returns and lazy charging arguments are never
    /// consumed.
    live: bool,
}

/// One CTA's contribution to [`KernelStats`], extracted after the kernel
/// closure ran (cost-model backend only).
pub(crate) struct CtaMeasure {
    pub(crate) cycles: f64,
    pub(crate) merged: WarpCounters,
    pub(crate) busy: f64,
    pub(crate) total: f64,
}

impl<'d> Cta<'d> {
    pub(crate) fn new(id: usize, dev: &'d DeviceConfig, warps: usize, live: bool) -> Cta<'d> {
        Cta {
            id,
            dev,
            warp_counters: vec![WarpCounters::default(); warps],
            scratch: Vec::new(),
            live,
        }
    }

    /// Number of warps in this CTA.
    pub fn num_warps(&self) -> usize {
        self.warp_counters.len()
    }

    /// Whether charging on this CTA records anything (true under the
    /// cost-model backend, false on the fast path). Kernels may use this
    /// to skip building expensive charging inputs.
    pub fn counters_live(&self) -> bool {
        self.live
    }

    /// Charging handle for warp `w`.
    pub fn warp(&mut self, w: usize) -> WarpCtx<'_> {
        WarpCtx::new(&mut self.warp_counters[w], self.dev, &mut self.scratch, self.live)
    }

    /// CTA-wide `__syncthreads()`: every warp pays the barrier.
    pub fn barrier(&mut self) {
        if !self.live {
            return;
        }
        for c in &mut self.warp_counters {
            c.barriers += 1;
        }
        // The sync cost lands on the critical-path warp — the one with the
        // most cycles so far. CTA time is the max over warps, so charging a
        // fixed warp (the old behavior: always warp 0) made the barrier
        // vanish from the modeled duration whenever warp 0 was not the
        // slowest.
        let mut crit = 0;
        let mut crit_cycles = f64::NEG_INFINITY;
        for (i, w) in self.warp_counters.iter().enumerate() {
            let c = w.warp_cycles(self.dev);
            if c > crit_cycles {
                crit_cycles = c;
                crit = i;
            }
        }
        self.warp_counters[crit].atomic_conflict_cycles += self.dev.cost.cta_barrier;
    }

    /// Modeled CTA duration: slowest warp (warps run concurrently on the
    /// SM's schedulers).
    fn cta_cycles(&self) -> f64 {
        self.warp_counters.iter().map(|w| w.warp_cycles(self.dev)).fold(0.0f64, f64::max)
    }

    /// Extract this CTA's timing and counter contribution. Field order and
    /// arithmetic match the pre-refactor `launch` body exactly, keeping
    /// modeled numbers byte-for-byte stable.
    pub(crate) fn measure(&self) -> CtaMeasure {
        let cycles = self.cta_cycles() * self.dev.cost.occupancy_stretch;
        let mut merged = WarpCounters::default();
        let mut busy = 0.0;
        let mut total = 0.0;
        for w in &self.warp_counters {
            merged.merge(w);
            busy += w.warp_busy_cycles(self.dev);
            total += w.warp_cycles(self.dev);
        }
        CtaMeasure { cycles, merged, busy, total }
    }
}

/// Launch `kernel` over `params.num_ctas` CTAs on the backend selected by
/// [`DeviceConfig::exec`]. Returns the per-CTA results in CTA order plus
/// the backend's stats: modeled cycles under [`ExecMode::Sim`], measured
/// wall-clock (zero cycles) under [`ExecMode::Fast`].
pub fn launch<R, F>(
    dev: &DeviceConfig,
    name: &str,
    params: LaunchParams,
    kernel: F,
) -> (Vec<R>, KernelStats)
where
    R: Send,
    F: Fn(&mut Cta) -> R + Sync,
{
    match dev.exec {
        ExecMode::Sim => SimExecutor::new(dev).run(name, params, kernel),
        ExecMode::Fast { threads } => FastExecutor::new(dev, threads).run(name, params, kernel),
    }
}

/// A deferred write set: `(start, values)` range-assignments plus
/// `(start, values)` range-accumulations, committed in CTA order.
///
/// This is how kernels return output safely from the parallel phase: a
/// well-formed kernel's `assign` ranges are disjoint across CTAs (the
/// non-conflicting writes of §5.2.3) while `add` ranges may overlap (the
/// staging-buffer path resolves them sequentially, mirroring the follow-up
/// kernel).
#[derive(Debug, Default)]
pub struct WriteList<T> {
    assigns: Vec<(usize, Vec<T>)>,
    adds: Vec<(usize, Vec<T>)>,
}

impl<T: Copy + std::ops::AddAssign> WriteList<T> {
    /// Empty write list.
    pub fn new() -> WriteList<T> {
        WriteList { assigns: Vec::new(), adds: Vec::new() }
    }

    /// Overwrite `out[start..start+values.len()]` at commit.
    pub fn assign(&mut self, start: usize, values: Vec<T>) {
        self.assigns.push((start, values));
    }

    /// Accumulate into `out[start..]` at commit.
    pub fn add(&mut self, start: usize, values: Vec<T>) {
        self.adds.push((start, values));
    }

    /// Number of deferred operations.
    pub fn len(&self) -> usize {
        self.assigns.len() + self.adds.len()
    }

    /// True when nothing is deferred.
    pub fn is_empty(&self) -> bool {
        self.assigns.is_empty() && self.adds.is_empty()
    }

    /// Apply to the output buffer: assigns first, then accumulations.
    pub fn commit(self, out: &mut [T]) {
        for (start, vals) in self.assigns {
            out[start..start + vals.len()].copy_from_slice(&vals);
        }
        for (start, vals) in self.adds {
            for (i, v) in vals.into_iter().enumerate() {
                out[start + i] += v;
            }
        }
    }

    /// The assign ranges, for overlap validation.
    pub fn assign_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.assigns.iter().map(|(s, v)| (*s, *s + v.len()))
    }
}

/// Validate the §5.2.3 protocol invariant across a batch of per-CTA write
/// lists: *assign* ranges must be pairwise disjoint (a conflicting assign
/// means two CTAs both believed they owned a row — a kernel bug the real
/// GPU would express as a lost update). Returns the first overlapping pair
/// of ranges, if any.
pub fn find_assign_overlap<T: Copy + std::ops::AddAssign>(
    lists: &[WriteList<T>],
) -> Option<((usize, usize), (usize, usize))> {
    let mut ranges: Vec<(usize, usize)> = lists.iter().flat_map(|l| l.assign_ranges()).collect();
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        if w[1].0 < w[0].1 {
            return Some((w[0], w[1]));
        }
    }
    None
}

/// Commit a batch of per-CTA write lists in CTA order.
pub fn commit_all<T: Copy + std::ops::AddAssign>(lists: Vec<WriteList<T>>, out: &mut [T]) {
    for l in lists {
        l.commit(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::AtomicKind;

    #[test]
    fn launch_runs_every_cta_in_order() {
        let dev = DeviceConfig::tiny();
        let (results, stats) =
            launch(&dev, "ids", LaunchParams { num_ctas: 7, warps_per_cta: 2 }, |cta| cta.id * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60]);
        assert_eq!(stats.num_ctas, 7);
        assert_eq!(stats.name, "ids");
    }

    #[test]
    fn counters_aggregate_across_ctas_and_warps() {
        let dev = DeviceConfig::tiny();
        let (_, stats) = launch(&dev, "k", LaunchParams { num_ctas: 3, warps_per_cta: 2 }, |cta| {
            for w in 0..2 {
                let mut warp = cta.warp(w);
                warp.load_contiguous(0, 32, 4);
                warp.half2_ops(5);
            }
        });
        assert_eq!(stats.totals.load_instrs, 6);
        assert_eq!(stats.totals.half2_ops, 30);
        assert_eq!(stats.totals.sectors_loaded, 24);
    }

    #[test]
    fn cta_time_is_max_over_warps() {
        let dev = DeviceConfig::tiny();
        // One warp does heavy compute, the other nothing: the CTA should
        // cost roughly the heavy warp, not the sum.
        let (_, heavy) = launch(&dev, "h", LaunchParams { num_ctas: 1, warps_per_cta: 2 }, |cta| {
            cta.warp(0).float_ops(10_000);
        });
        let (_, both) = launch(&dev, "b", LaunchParams { num_ctas: 1, warps_per_cta: 2 }, |cta| {
            cta.warp(0).float_ops(10_000);
            cta.warp(1).float_ops(10_000);
        });
        assert!((heavy.cycles - both.cycles).abs() < 1e-6);
    }

    #[test]
    fn atomics_lengthen_kernels() {
        let dev = DeviceConfig::tiny();
        let run = |atomic: bool| {
            let (_, s) = launch(&dev, "k", LaunchParams { num_ctas: 4, warps_per_cta: 1 }, |cta| {
                let mut w = cta.warp(0);
                w.load_contiguous(0, 64, 2);
                if atomic {
                    w.atomic_add(AtomicKind::F16, 64, 2.0);
                }
            });
            s.cycles
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn write_list_assign_then_add() {
        let mut out = vec![0i64; 8];
        let mut wl = WriteList::new();
        wl.assign(2, vec![5, 6]);
        wl.add(3, vec![10, 20]);
        wl.commit(&mut out);
        assert_eq!(out, vec![0, 0, 5, 16, 20, 0, 0, 0]);
    }

    #[test]
    fn overlap_detector_finds_conflicting_assigns() {
        let mut a: WriteList<i64> = WriteList::new();
        a.assign(0, vec![1, 2, 3]);
        let mut b: WriteList<i64> = WriteList::new();
        b.assign(2, vec![9]);
        assert!(find_assign_overlap(&[a, b]).is_some());

        let mut c: WriteList<i64> = WriteList::new();
        c.assign(0, vec![1, 2, 3]);
        let mut d: WriteList<i64> = WriteList::new();
        d.assign(3, vec![9]);
        d.add(1, vec![5]); // adds may overlap freely
        assert!(find_assign_overlap(&[c, d]).is_none());
    }

    #[test]
    fn commit_all_is_cta_ordered() {
        let mut out = vec![0i64; 4];
        let mut a = WriteList::new();
        a.assign(0, vec![1, 1]);
        let mut b = WriteList::new();
        b.add(0, vec![2, 2]);
        commit_all(vec![a, b], &mut out);
        assert_eq!(out, vec![3, 3, 0, 0]);
    }

    #[test]
    fn cta_barrier_charges_all_warps() {
        let dev = DeviceConfig::tiny();
        let (_, s) = launch(&dev, "k", LaunchParams { num_ctas: 1, warps_per_cta: 4 }, |cta| {
            cta.barrier();
        });
        assert_eq!(s.totals.barriers, 4);
    }

    #[test]
    fn barrier_cost_lands_on_critical_path_warp() {
        // Two-warp skewed CTA: warp 0 does 100 float ops, warp 1 does 1000.
        // The barrier's 20 cycles must extend the slowest warp (warp 1),
        // not warp 0 where it would disappear under the max.
        let dev = DeviceConfig::tiny();
        let (_, s) = launch(&dev, "k", LaunchParams { num_ctas: 1, warps_per_cta: 2 }, |cta| {
            cta.warp(0).float_ops(100);
            cta.warp(1).float_ops(1000);
            cta.barrier();
        });
        // Critical path: 1000 float cycles + 20 barrier cycles, stretched
        // by occupancy (x2), plus fixed launch overhead (1500).
        let expect =
            (1000.0 + dev.cost.cta_barrier) * dev.cost.occupancy_stretch + dev.cost.launch_overhead;
        assert!((s.cycles - expect).abs() < 1e-9, "got {} want {expect}", s.cycles);
        // The old warp-0 attribution would have modeled 3500 cycles here.
        assert!((s.cycles - 3540.0).abs() < 1e-9);
    }

    #[test]
    fn fast_mode_launch_matches_sim_results_with_dead_counters() {
        let sim_dev = DeviceConfig::tiny();
        let params = LaunchParams { num_ctas: 9, warps_per_cta: 2 };
        let kernel = |cta: &mut Cta| {
            let mut w = cta.warp(0);
            w.load_contiguous(0, 32, 4);
            w.float_ops(8);
            cta.barrier();
            cta.id + 1
        };
        let (sim_r, sim_s) = launch(&sim_dev, "k", params, kernel);
        let fast_dev = DeviceConfig::tiny().with_exec(ExecMode::fast_with_threads(3));
        let (fast_r, fast_s) = launch(&fast_dev, "k", params, kernel);
        assert_eq!(sim_r, fast_r);
        assert!(sim_s.cycles > 0.0);
        assert_eq!(fast_s.cycles, 0.0, "fast path reports wall-clock only");
        assert_eq!(fast_s.totals, WarpCounters::default(), "charging is a no-op");
    }
}
