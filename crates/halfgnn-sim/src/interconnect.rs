//! Multi-device interconnect cost model: N simulated devices joined by
//! point-to-point links, each charging a fixed per-message latency plus
//! `bytes / bandwidth` serialization time.
//!
//! Two topologies (the ones multi-GPU GNN systems actually ship):
//!
//! * [`Topology::Ring`] — device `i` links to `i±1 (mod N)`. Messages to a
//!   non-neighbor relay hop-by-hop along the shorter arc (forward on a
//!   tie); all-reduce is the standard 2(N−1)-step ring (reduce-scatter +
//!   all-gather), moving `2·(N−1)/N · payload` per directed link.
//! * [`Topology::AllToAll`] — a full crossbar (NVSwitch-like): every pair
//!   is one hop; all-reduce is direct reduce-scatter + all-gather, each
//!   ordered pair carrying `2 · payload/N`.
//!
//! The model is precision-aware only through the payload byte counts the
//! caller charges: FP16 feature rows and gradients are half the bytes of
//! FP32, which is exactly the headline `BENCH_pr5` measures. Every charge
//! lands in a [`CommsLedger`] keeping per-link byte/message/time totals
//! (the per-link breakdown `TrainReport` surfaces) plus halo vs.
//! all-reduce class totals.

use std::collections::BTreeMap;

/// Interconnect wiring between the simulated devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Bidirectional ring: device `i` ↔ `i±1 (mod N)`.
    Ring,
    /// Full crossbar: every ordered pair is a direct link.
    AllToAll,
}

impl Topology {
    /// CLI tag.
    pub fn tag(self) -> &'static str {
        match self {
            Topology::Ring => "ring",
            Topology::AllToAll => "alltoall",
        }
    }

    /// Parse a CLI tag.
    pub fn parse(s: &str) -> Option<Topology> {
        match s {
            "ring" => Some(Topology::Ring),
            "alltoall" | "all-to-all" => Some(Topology::AllToAll),
            _ => None,
        }
    }
}

/// The interconnect joining `devices` simulated devices: topology plus
/// per-link latency and bandwidth (identical links, full duplex — each
/// direction is its own link).
#[derive(Clone, Debug)]
pub struct Interconnect {
    /// Wiring.
    pub topology: Topology,
    /// Number of devices.
    pub devices: usize,
    /// Fixed per-message link latency in microseconds.
    pub link_latency_us: f64,
    /// Link bandwidth in bytes per microsecond (per direction).
    pub link_bytes_per_us: f64,
    /// Hop paths, indexed `src * devices + dst`. Precomputed at
    /// construction: `route` sits on the per-message hot path of every
    /// halo exchange and all-reduce, and must not allocate.
    routes: Vec<Vec<(usize, usize)>>,
}

/// The hop path from `src` to `dst` as directed `(from, to)` links.
/// Ring: shorter arc, forward on a tie. Crossbar: one direct hop.
fn compute_route(topology: Topology, n: usize, src: usize, dst: usize) -> Vec<(usize, usize)> {
    if src == dst {
        return Vec::new();
    }
    match topology {
        Topology::AllToAll => vec![(src, dst)],
        Topology::Ring => {
            let fwd = (dst + n - src) % n;
            let bwd = (src + n - dst) % n;
            let (step, hops) = if fwd <= bwd { (1, fwd) } else { (n - 1, bwd) };
            let mut path = Vec::with_capacity(hops);
            let mut at = src;
            for _ in 0..hops {
                let next = (at + step) % n;
                path.push((at, next));
                at = next;
            }
            path
        }
    }
}

impl Interconnect {
    /// NVLink3-like links: 25 GB/s per direction, ~1.75 µs message setup.
    pub fn nvlink_like(devices: usize, topology: Topology) -> Interconnect {
        assert!(devices > 0, "need at least one device");
        let routes = (0..devices * devices)
            .map(|i| compute_route(topology, devices, i / devices, i % devices))
            .collect();
        Interconnect {
            topology,
            devices,
            link_latency_us: 1.75,
            link_bytes_per_us: 25_000.0,
            routes,
        }
    }

    /// Time for one message of `bytes` over one link.
    pub fn link_time_us(&self, bytes: u64) -> f64 {
        self.link_latency_us + bytes as f64 / self.link_bytes_per_us
    }

    /// The hop path from `src` to `dst` as directed `(from, to)` links,
    /// precomputed at construction (empty when `src == dst`).
    pub fn route(&self, src: usize, dst: usize) -> &[(usize, usize)] {
        assert!(src < self.devices && dst < self.devices, "device out of range");
        &self.routes[src * self.devices + dst]
    }
}

/// What a charge was for — the ledger keeps class totals so reports can
/// separate forward halo traffic from gradient synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Feature-row halo exchange before a local sparse op.
    Halo,
    /// Gradient all-reduce after the backward pass.
    AllReduce,
}

/// Accumulated traffic over one directed link.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkStat {
    /// Bytes carried.
    pub bytes: u64,
    /// Messages carried.
    pub messages: u64,
    /// Serialized link-busy time in microseconds (latency + bytes/BW per
    /// message).
    pub time_us: f64,
}

/// Per-link and per-class accounting of every interconnect charge.
#[derive(Clone, Debug, Default)]
pub struct CommsLedger {
    links: BTreeMap<(usize, usize), LinkStat>,
    /// Total bytes charged as halo exchange.
    pub halo_bytes: u64,
    /// Total bytes charged as gradient all-reduce.
    pub allreduce_bytes: u64,
}

impl CommsLedger {
    /// Fresh, empty ledger.
    pub fn new() -> CommsLedger {
        CommsLedger::default()
    }

    /// Drop all accumulated charges (per-epoch reuse).
    pub fn reset(&mut self) {
        self.links.clear();
        self.halo_bytes = 0;
        self.allreduce_bytes = 0;
    }

    fn charge_link(&mut self, ic: &Interconnect, from: usize, to: usize, bytes: u64) {
        let stat = self.links.entry((from, to)).or_default();
        stat.bytes += bytes;
        stat.messages += 1;
        stat.time_us += ic.link_time_us(bytes);
    }

    /// Charge one `src → dst` message of `bytes`, routed hop-by-hop.
    pub fn message(
        &mut self,
        ic: &Interconnect,
        class: TrafficClass,
        src: usize,
        dst: usize,
        bytes: u64,
    ) {
        for &(from, to) in ic.route(src, dst) {
            self.charge_link(ic, from, to, bytes);
        }
        if src != dst {
            match class {
                TrafficClass::Halo => self.halo_bytes += bytes,
                TrafficClass::AllReduce => self.allreduce_bytes += bytes,
            }
        }
    }

    /// Charge an all-reduce of `payload` bytes across all devices, and
    /// return the busiest-link time it added — the collective's modeled
    /// duration, which [`OverlapTimeline`] logs as an `AllReduce` event.
    ///
    /// Ring: 2(N−1) steps; each step every device sends one `payload/N`
    /// chunk forward, so each directed forward link carries
    /// `2(N−1)·⌈payload/N⌉` in total. Crossbar: direct reduce-scatter +
    /// all-gather, every ordered pair carrying `2·⌈payload/N⌉`.
    pub fn all_reduce(&mut self, ic: &Interconnect, payload: u64) -> f64 {
        let n = ic.devices;
        if n <= 1 || payload == 0 {
            return 0.0;
        }
        let chunk = payload.div_ceil(n as u64);
        match ic.topology {
            Topology::Ring => {
                for step in 0..2 * (n - 1) {
                    let _ = step;
                    for d in 0..n {
                        self.charge_link(ic, d, (d + 1) % n, chunk);
                        self.allreduce_bytes += chunk;
                    }
                }
                2.0 * (n - 1) as f64 * ic.link_time_us(chunk)
            }
            Topology::AllToAll => {
                for src in 0..n {
                    for dst in 0..n {
                        if src != dst {
                            for _phase in 0..2 {
                                self.charge_link(ic, src, dst, chunk);
                                self.allreduce_bytes += chunk;
                            }
                        }
                    }
                }
                2.0 * ic.link_time_us(chunk)
            }
        }
    }

    /// Total bytes over all links (relay hops count once per link).
    pub fn total_bytes(&self) -> u64 {
        self.links.values().map(|s| s.bytes).sum()
    }

    /// Modeled communication time: links transfer concurrently, so the
    /// epoch's comms time is the busiest link's serialized time.
    pub fn total_time_us(&self) -> f64 {
        self.links.values().map(|s| s.time_us).fold(0.0, f64::max)
    }

    /// Per-link breakdown, sorted by `(from, to)`.
    pub fn link_stats(&self) -> Vec<((usize, usize), LinkStat)> {
        self.links.iter().map(|(&k, v)| (k, v.clone())).collect()
    }
}

/// One entry in a device's per-epoch activity stream, in program order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommEvent {
    /// Modeled kernel time between communication points.
    Compute(f64),
    /// A halo exchange's wire time on this device (per-owner receives,
    /// serialized).
    Halo(f64),
    /// This device's share of a gradient all-reduce. A barrier: the
    /// optimizer step needs the reduced values, so nothing hides it.
    AllReduce(f64),
}

impl CommEvent {
    fn time_us(self) -> f64 {
        match self {
            CommEvent::Compute(t) | CommEvent::Halo(t) | CommEvent::AllReduce(t) => t,
        }
    }
}

/// Per-device event streams for one epoch, and the two epoch-time models
/// computed over them (DESIGN.md §16).
///
/// * [`serialized_us`](Self::serialized_us) — every device runs compute
///   and communication strictly in program order (today's conservative
///   model).
/// * [`overlapped_us`](Self::overlapped_us) — double-buffered halo
///   prefetch: an exchange's wire time hides under the compute since the
///   previous exchange, because its source values already exist when that
///   compute starts. The epoch's first exchange has nothing to hide under
///   and all-reduces are barriers, so the bound stays honest.
///
/// Both are *asserted* metrics: `overlapped_us <= serialized_us` always,
/// strictly `<` whenever any non-first halo follows nonzero compute.
#[derive(Clone, Debug, Default)]
pub struct OverlapTimeline {
    events: Vec<Vec<CommEvent>>,
}

impl OverlapTimeline {
    /// Empty timeline over `devices` devices.
    pub fn new(devices: usize) -> OverlapTimeline {
        OverlapTimeline { events: vec![Vec::new(); devices] }
    }

    /// Drop all events (per-epoch reuse).
    pub fn reset(&mut self) {
        for evs in &mut self.events {
            evs.clear();
        }
    }

    /// Append an event to `device`'s stream.
    pub fn log(&mut self, device: usize, ev: CommEvent) {
        self.events[device].push(ev);
    }

    /// The events logged for `device`, in program order.
    pub fn events(&self, device: usize) -> &[CommEvent] {
        &self.events[device]
    }

    /// Epoch time with comms fully serialized against compute: the
    /// slowest device's total stream.
    pub fn serialized_us(&self) -> f64 {
        self.events
            .iter()
            .map(|evs| evs.iter().map(|ev| ev.time_us()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Epoch time under double-buffered halo prefetch: per device, total
    /// compute plus only the *exposed* communication — each halo's time
    /// less the compute accumulated since the previous communication
    /// point, floored at zero. Max over devices.
    pub fn overlapped_us(&self) -> f64 {
        self.events
            .iter()
            .map(|evs| {
                let mut total = 0.0f64;
                let mut window = 0.0f64; // compute since the last comm point
                let mut first_halo = true;
                for ev in evs {
                    match *ev {
                        CommEvent::Compute(t) => {
                            total += t;
                            window += t;
                        }
                        CommEvent::Halo(t) => {
                            total += if first_halo { t } else { (t - window).max(0.0) };
                            first_halo = false;
                            window = 0.0;
                        }
                        CommEvent::AllReduce(t) => {
                            total += t;
                            window = 0.0;
                        }
                    }
                }
                total
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_tags_round_trip() {
        for t in [Topology::Ring, Topology::AllToAll] {
            assert_eq!(Topology::parse(t.tag()), Some(t));
        }
        assert_eq!(Topology::parse("torus"), None);
    }

    #[test]
    fn ring_routes_take_the_shorter_arc() {
        let ic = Interconnect::nvlink_like(4, Topology::Ring);
        assert_eq!(ic.route(0, 1), vec![(0, 1)]);
        assert_eq!(ic.route(0, 3), vec![(0, 3)]); // backward: 1 hop, not 3
        assert_eq!(ic.route(0, 2), vec![(0, 1), (1, 2)]); // tie → forward
        assert_eq!(ic.route(3, 1), vec![(3, 0), (0, 1)]);
        assert!(ic.route(2, 2).is_empty());
    }

    #[test]
    fn crossbar_routes_are_single_hop() {
        let ic = Interconnect::nvlink_like(8, Topology::AllToAll);
        for s in 0..8 {
            for d in 0..8 {
                let r = ic.route(s, d);
                assert_eq!(r.len(), usize::from(s != d));
            }
        }
    }

    #[test]
    fn message_charges_every_hop() {
        let ic = Interconnect::nvlink_like(4, Topology::Ring);
        let mut l = CommsLedger::new();
        l.message(&ic, TrafficClass::Halo, 0, 2, 1000);
        assert_eq!(l.total_bytes(), 2000, "two hops carry the same bytes");
        assert_eq!(l.halo_bytes, 1000, "class total counts the payload once");
        let links = l.link_stats();
        assert_eq!(links.len(), 2);
        let t = ic.link_time_us(1000);
        assert!((l.total_time_us() - t).abs() < 1e-12, "hops overlap per-link");
    }

    #[test]
    fn ring_allreduce_volume_matches_the_closed_form() {
        let ic = Interconnect::nvlink_like(4, Topology::Ring);
        let mut l = CommsLedger::new();
        let payload = 4000u64;
        l.all_reduce(&ic, payload);
        // 2(N-1) steps × N links × payload/N bytes.
        assert_eq!(l.total_bytes(), 2 * 3 * 4 * 1000);
        assert_eq!(l.allreduce_bytes, 2 * 3 * 4 * 1000);
        // Every forward link saw 2(N-1) messages of payload/N.
        for ((from, to), s) in l.link_stats() {
            assert_eq!((to + 4 - from) % 4, 1, "ring all-reduce is forward-only");
            assert_eq!(s.messages, 6);
            assert_eq!(s.bytes, 6000);
        }
    }

    #[test]
    fn crossbar_allreduce_volume_matches_the_closed_form() {
        let ic = Interconnect::nvlink_like(4, Topology::AllToAll);
        let mut l = CommsLedger::new();
        l.all_reduce(&ic, 4000);
        // N(N-1) ordered pairs × 2 phases × payload/N.
        assert_eq!(l.total_bytes(), 4 * 3 * 2 * 1000);
    }

    #[test]
    fn single_device_needs_no_comms() {
        let ic = Interconnect::nvlink_like(1, Topology::Ring);
        let mut l = CommsLedger::new();
        l.all_reduce(&ic, 1 << 20);
        l.message(&ic, TrafficClass::Halo, 0, 0, 1 << 20);
        assert_eq!(l.total_bytes(), 0);
        assert_eq!(l.halo_bytes, 0);
    }

    #[test]
    fn allreduce_returns_its_busiest_link_time() {
        for (topo, steps) in [(Topology::Ring, 6.0), (Topology::AllToAll, 2.0)] {
            let ic = Interconnect::nvlink_like(4, topo);
            let mut l = CommsLedger::new();
            let t = l.all_reduce(&ic, 4000);
            let want = steps * ic.link_time_us(1000);
            assert!((t - want).abs() < 1e-9, "{topo:?}: {t} != {want}");
            assert!((l.total_time_us() - want).abs() < 1e-9, "{topo:?} ledger agrees");
        }
        let ic = Interconnect::nvlink_like(1, Topology::Ring);
        assert_eq!(CommsLedger::new().all_reduce(&ic, 4000), 0.0);
    }

    #[test]
    fn overlap_hides_halo_time_under_preceding_compute() {
        let mut t = OverlapTimeline::new(2);
        // Device 0: halo(4) compute(10) halo(6) compute(10) allreduce(5).
        t.log(0, CommEvent::Halo(4.0));
        t.log(0, CommEvent::Compute(10.0));
        t.log(0, CommEvent::Halo(6.0));
        t.log(0, CommEvent::Compute(10.0));
        t.log(0, CommEvent::AllReduce(5.0));
        // Device 1 is idle apart from the barrier.
        t.log(1, CommEvent::AllReduce(5.0));
        assert!((t.serialized_us() - 35.0).abs() < 1e-12);
        // The 6 µs halo hides entirely under the 10 µs window; the first
        // halo (4 µs) and the barrier (5 µs) stay exposed.
        assert!((t.overlapped_us() - 29.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_exposes_the_residual_when_the_window_is_short() {
        let mut t = OverlapTimeline::new(1);
        t.log(0, CommEvent::Halo(4.0));
        t.log(0, CommEvent::Compute(2.0));
        t.log(0, CommEvent::Halo(7.0)); // only 2 µs hides: 5 exposed
        t.log(0, CommEvent::Compute(1.0));
        assert!((t.serialized_us() - 14.0).abs() < 1e-12);
        assert!((t.overlapped_us() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_never_beats_serialized_and_reset_clears() {
        let mut t = OverlapTimeline::new(3);
        for d in 0..3 {
            t.log(d, CommEvent::Halo(1.0 + d as f64));
            t.log(d, CommEvent::Compute(2.0 * d as f64));
            t.log(d, CommEvent::Halo(3.0));
        }
        assert!(t.overlapped_us() <= t.serialized_us());
        t.reset();
        assert_eq!(t.serialized_us(), 0.0);
        assert_eq!(t.overlapped_us(), 0.0);
        assert!(t.events(0).is_empty());
    }

    #[test]
    fn fp16_payloads_halve_fp32_comms() {
        // The headline property, at the cost-model level: same row counts,
        // half the element width, half the bytes.
        for topo in [Topology::Ring, Topology::AllToAll] {
            let ic = Interconnect::nvlink_like(4, topo);
            let (mut h, mut f) = (CommsLedger::new(), CommsLedger::new());
            for (src, dst, rows) in [(0, 1, 37u64), (2, 0, 11), (3, 1, 5)] {
                h.message(&ic, TrafficClass::Halo, src, dst, rows * 64 * 2);
                f.message(&ic, TrafficClass::Halo, src, dst, rows * 64 * 4);
            }
            h.all_reduce(&ic, 10_000 * 2);
            f.all_reduce(&ic, 10_000 * 4);
            assert_eq!(2 * h.total_bytes(), f.total_bytes(), "{topo:?}");
        }
    }
}
