//! The warp-level charging API kernels program against.
//!
//! A kernel's functional work is ordinary Rust over slices; its
//! hardware-visible actions are *reported* through a [`WarpCtx`], which
//! decomposes them into the counters of [`crate::WarpCounters`]. The split
//! keeps the simulator precise about cost without forcing kernels through
//! an interpreter.

use crate::config::DeviceConfig;
use crate::counters::WarpCounters;
use crate::memory::{sectors_contiguous, sectors_gather};

/// Atomic operand width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicKind {
    /// 32-bit atomic add (native).
    F32,
    /// 16-bit atomic add (CAS loop on the containing 32-bit word).
    F16,
}

/// Charging handle for one warp.
///
/// When the CTA runs on the fast backend ([`crate::exec::FastExecutor`]),
/// `live` is false and every charging method returns before touching its
/// arguments — lazily-built address iterators are never consumed, so
/// charging costs nothing beyond the branch.
pub struct WarpCtx<'a> {
    counters: &'a mut WarpCounters,
    dev: &'a DeviceConfig,
    scratch: &'a mut Vec<u64>,
    live: bool,
}

impl<'a> WarpCtx<'a> {
    pub(crate) fn new(
        counters: &'a mut WarpCounters,
        dev: &'a DeviceConfig,
        scratch: &'a mut Vec<u64>,
        live: bool,
    ) -> WarpCtx<'a> {
        WarpCtx { counters, dev, scratch, live }
    }

    /// The device this warp runs on.
    pub fn device(&self) -> &DeviceConfig {
        self.dev
    }

    /// Report `n` non-finite (INF/NaN) values observed in this warp's
    /// functional output. Pure telemetry: feeds
    /// [`WarpCounters::nonfinite_values`] and costs no modeled cycles.
    pub fn nonfinite_values(&mut self, n: u64) {
        if !self.live {
            return;
        }
        self.counters.nonfinite_values += n;
    }

    /// Coalesced load of `count` contiguous elements of `elem_bytes` from
    /// `base`: `ceil(count*elem_bytes / (warp_size*elem_bytes))` load
    /// instructions, sector-exact traffic. This is the feature-parallel
    /// pattern (§2.1.3).
    pub fn load_contiguous(&mut self, base: u64, count: usize, elem_bytes: usize) {
        if !self.live {
            return;
        }
        if count == 0 {
            return;
        }
        let bytes = (count * elem_bytes) as u64;
        let lanes = self.dev.warp_size;
        self.counters.load_instrs += count.div_ceil(lanes) as u64;
        self.counters.sectors_loaded += sectors_contiguous(base, bytes, self.dev.sector_bytes);
        self.counters.useful_bytes_loaded += bytes;
    }

    /// Gathered load at arbitrary per-thread addresses (e.g. the naive
    /// repeated NZE fetch HalfGNN's phase-1 load replaces).
    pub fn load_gather(&mut self, addrs: impl IntoIterator<Item = u64>, elem_bytes: usize) {
        if !self.live {
            return;
        }
        let mut n = 0u64;
        let sector_bytes = self.dev.sector_bytes;
        self.scratch.clear();
        for a in addrs {
            n += 1;
            let first = a / sector_bytes;
            let last = (a + elem_bytes as u64 - 1) / sector_bytes;
            for s in first..=last {
                self.scratch.push(s);
            }
        }
        if n == 0 {
            return;
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.counters.sectors_loaded += self.scratch.len() as u64;
        self.counters.load_instrs += n.div_ceil(self.dev.warp_size as u64);
        self.counters.useful_bytes_loaded += n * elem_bytes as u64;
    }

    /// All threads read the same address (broadcast: one sector).
    pub fn load_broadcast(&mut self, addr: u64, elem_bytes: usize) {
        if !self.live {
            return;
        }
        self.counters.load_instrs += 1;
        self.counters.sectors_loaded +=
            sectors_contiguous(addr, elem_bytes as u64, self.dev.sector_bytes);
        self.counters.useful_bytes_loaded += elem_bytes as u64;
    }

    /// Coalesced store of `count` contiguous elements.
    pub fn store_contiguous(&mut self, base: u64, count: usize, elem_bytes: usize) {
        if !self.live {
            return;
        }
        if count == 0 {
            return;
        }
        let bytes = (count * elem_bytes) as u64;
        self.counters.store_instrs += count.div_ceil(self.dev.warp_size) as u64;
        self.counters.sectors_stored += sectors_contiguous(base, bytes, self.dev.sector_bytes);
        self.counters.useful_bytes_stored += bytes;
    }

    /// Scattered store at arbitrary addresses.
    pub fn store_gather(&mut self, addrs: impl IntoIterator<Item = u64>, elem_bytes: usize) {
        if !self.live {
            return;
        }
        let mut collected = std::mem::take(self.scratch);
        let n = {
            let it = addrs.into_iter();
            collected.clear();
            let mut n = 0u64;
            for a in it {
                n += 1;
                collected.push(a / self.dev.sector_bytes);
            }
            n
        };
        collected.sort_unstable();
        collected.dedup();
        self.counters.sectors_stored += collected.len() as u64;
        *self.scratch = collected;
        if n > 0 {
            self.counters.store_instrs += n.div_ceil(self.dev.warp_size as u64);
            self.counters.useful_bytes_stored += n * elem_bytes as u64;
        }
    }

    /// Feature-parallel load of several feature rows, `row_bytes` each,
    /// issued as `elem_bytes`-wide vector loads. Instruction count is
    /// computed over the *total* lanes, which models sub-warps (§4.1): with
    /// half2 and F=32 only 16 lanes are needed per row, so one warp
    /// instruction serves two rows.
    pub fn load_feature_rows(
        &mut self,
        bases: impl IntoIterator<Item = u64>,
        row_bytes: usize,
        elem_bytes: usize,
    ) {
        if !self.live {
            return;
        }
        let mut rows = 0u64;
        for b in bases {
            rows += 1;
            self.counters.sectors_loaded +=
                sectors_contiguous(b, row_bytes as u64, self.dev.sector_bytes);
        }
        if rows == 0 {
            return;
        }
        let lanes_per_row = (row_bytes / elem_bytes) as u64;
        let total_lanes = rows * lanes_per_row;
        self.counters.load_instrs += total_lanes.div_ceil(self.dev.warp_size as u64);
        self.counters.useful_bytes_loaded += rows * row_bytes as u64;
    }

    /// `n` warp float instructions.
    pub fn float_ops(&mut self, n: u64) {
        if !self.live {
            return;
        }
        self.counters.float_ops += n;
    }

    /// `n` warp half-intrinsic instructions (Fig. 3b).
    pub fn half_ops(&mut self, n: u64) {
        if !self.live {
            return;
        }
        self.counters.half_ops += n;
    }

    /// `n` warp half2 instructions (Fig. 3c: two values per lane-op).
    pub fn half2_ops(&mut self, n: u64) {
        if !self.live {
            return;
        }
        self.counters.half2_ops += n;
    }

    /// `n` h2f/f2h conversion instructions (the Fig. 3a tax and the
    /// mixed-precision data-conversion tax of §3.1.2).
    pub fn convert_ops(&mut self, n: u64) {
        if !self.live {
            return;
        }
        self.counters.convert_ops += n;
    }

    /// `rounds` of warp shuffle (inter-thread communication). Each round is
    /// an implicit memory barrier — the §5.1.1 observation.
    pub fn shuffle_rounds(&mut self, rounds: u64) {
        if !self.live {
            return;
        }
        self.counters.shuffles += rounds;
        self.counters.barriers += rounds;
    }

    /// `n` shared-memory access instructions.
    pub fn smem_accesses(&mut self, n: u64) {
        if !self.live {
            return;
        }
        self.counters.smem_accesses += n;
    }

    /// `count` atomic add instructions of the given width.
    /// `avg_conflict` is the expected number of other atomics contending
    /// for the same address (≥ 0): conflicting atomics serialize.
    pub fn atomic_add(&mut self, kind: AtomicKind, count: u64, avg_conflict: f64) {
        if !self.live {
            return;
        }
        let (base, conflict) = match kind {
            AtomicKind::F32 => {
                self.counters.atomics_f32 += count;
                // Native atomics pipeline in the L2 atomic unit: contention
                // cost saturates.
                (self.dev.cost.atomic_f32, avg_conflict.min(self.dev.cost.atomic_f32_conflict_cap))
            }
            AtomicKind::F16 => {
                self.counters.atomics_f16 += count;
                // CAS loops retry under contention: a much higher
                // saturation point than native atomics.
                (
                    self.dev.cost.atomic_f32 * self.dev.cost.atomic_f16_mult,
                    avg_conflict.min(self.dev.cost.atomic_f16_conflict_cap),
                )
            }
        };
        if conflict > 0.0 {
            self.counters.atomic_conflict_cycles += count as f64 * base * conflict;
        }
    }

    /// Explicit barrier not tied to a shuffle (e.g. after a cooperative
    /// shared-memory fill).
    pub fn barrier(&mut self) {
        if !self.live {
            return;
        }
        self.counters.barriers += 1;
    }
}

/// Standalone sector count helper re-exported for kernels that precompute
/// traffic outside a warp context.
pub fn gather_sectors(addrs: impl IntoIterator<Item = u64>, elem_bytes: u64) -> u64 {
    let mut scratch = Vec::new();
    sectors_gather(addrs, elem_bytes, 32, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_run(f: impl FnOnce(&mut WarpCtx)) -> WarpCounters {
        let dev = DeviceConfig::a100_like();
        let mut c = WarpCounters::default();
        let mut scratch = Vec::new();
        let mut w = WarpCtx::new(&mut c, &dev, &mut scratch, true);
        f(&mut w);
        c
    }

    #[test]
    fn contiguous_float_load_shape() {
        let c = ctx_run(|w| w.load_contiguous(0, 32, 4));
        assert_eq!(c.load_instrs, 1);
        assert_eq!(c.sectors_loaded, 4);
        assert_eq!(c.useful_bytes_loaded, 128);
    }

    #[test]
    fn scalar_half_load_moves_64_bytes() {
        // The paper's §4.1 observation: one warp of scalar half loads moves
        // only 64 bytes.
        let c = ctx_run(|w| w.load_contiguous(0, 32, 2));
        assert_eq!(c.load_instrs, 1);
        assert_eq!(c.sectors_loaded, 2);
        assert_eq!(c.useful_bytes_loaded, 64);
    }

    #[test]
    fn half2_load_restores_full_coalescing() {
        // 32 threads x half2 (4B) = 128 B in one instruction.
        let c = ctx_run(|w| w.load_contiguous(0, 32, 4));
        assert_eq!(c.sectors_loaded, 4);
    }

    #[test]
    fn half8_load_is_512_bytes_one_instruction() {
        let c = ctx_run(|w| w.load_contiguous(0, 32, 16));
        assert_eq!(c.load_instrs, 1);
        assert_eq!(c.sectors_loaded, 16);
        assert_eq!(c.useful_bytes_loaded, 512);
    }

    #[test]
    fn gather_counts_distinct_sectors() {
        let c = ctx_run(|w| w.load_gather((0..32u64).map(|i| i * 64), 2));
        assert_eq!(c.sectors_loaded, 32);
        assert_eq!(c.load_instrs, 1);
    }

    #[test]
    fn broadcast_is_cheap() {
        let c = ctx_run(|w| w.load_broadcast(1234, 4));
        assert_eq!(c.sectors_loaded, 1);
    }

    #[test]
    fn stores_and_ops_accumulate() {
        let c = ctx_run(|w| {
            w.store_contiguous(256, 64, 2);
            w.half2_ops(3);
            w.convert_ops(2);
            w.shuffle_rounds(4);
            w.smem_accesses(5);
        });
        assert_eq!(c.store_instrs, 2);
        assert_eq!(c.sectors_stored, 4);
        assert_eq!(c.half2_ops, 3);
        assert_eq!(c.convert_ops, 2);
        assert_eq!(c.shuffles, 4);
        assert_eq!(c.barriers, 4);
        assert_eq!(c.smem_accesses, 5);
    }

    #[test]
    fn atomic_conflict_serializes() {
        let free = ctx_run(|w| w.atomic_add(AtomicKind::F16, 10, 0.0));
        let contended = ctx_run(|w| w.atomic_add(AtomicKind::F16, 10, 8.0));
        let dev = DeviceConfig::a100_like();
        // Contention multiplies cost up to the CAS saturation cap.
        assert!(contended.warp_cycles(&dev) > 3.0 * free.warp_cycles(&dev));
    }

    #[test]
    fn dead_ctx_charges_nothing_and_skips_lazy_args() {
        let dev = DeviceConfig::a100_like();
        let mut c = WarpCounters::default();
        let mut scratch = Vec::new();
        let mut w = WarpCtx::new(&mut c, &dev, &mut scratch, false);
        let mut consumed = false;
        w.load_gather(
            (0..4u64).map(|a| {
                consumed = true;
                a * 64
            }),
            2,
        );
        w.load_contiguous(0, 32, 4);
        w.half2_ops(100);
        w.atomic_add(AtomicKind::F16, 10, 8.0);
        w.barrier();
        drop(w);
        assert!(!consumed, "dead charging must not consume lazy address iterators");
        assert_eq!(c, WarpCounters::default());
    }

    #[test]
    fn store_gather_dedups_sectors() {
        let c = ctx_run(|w| w.store_gather(vec![0u64, 2, 4, 6], 2));
        assert_eq!(c.sectors_stored, 1);
        assert_eq!(c.store_instrs, 1);
        assert_eq!(c.useful_bytes_stored, 8);
    }
}
