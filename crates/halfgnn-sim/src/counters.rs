//! Per-warp event counters and aggregated kernel statistics.

use crate::config::DeviceConfig;

/// Everything one warp did, in hardware-visible units.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WarpCounters {
    /// Global load instructions issued.
    pub load_instrs: u64,
    /// Global store instructions issued.
    pub store_instrs: u64,
    /// 32-byte sectors moved by loads.
    pub sectors_loaded: u64,
    /// 32-byte sectors moved by stores.
    pub sectors_stored: u64,
    /// Bytes the kernel actually consumed (for load efficiency).
    pub useful_bytes_loaded: u64,
    /// Bytes the kernel actually produced.
    pub useful_bytes_stored: u64,
    /// Warp float instructions.
    pub float_ops: u64,
    /// Warp half-intrinsic instructions (Fig. 3b path).
    pub half_ops: u64,
    /// Warp half2 SIMD instructions (Fig. 3c path).
    pub half2_ops: u64,
    /// h2f/f2h conversion instructions (Fig. 3a overhead).
    pub convert_ops: u64,
    /// Warp shuffle rounds (each is an implicit memory barrier).
    pub shuffles: u64,
    /// Barriers observed (shuffle rounds + explicit CTA barriers).
    pub barriers: u64,
    /// Shared-memory access instructions.
    pub smem_accesses: u64,
    /// 32-bit atomic instructions.
    pub atomics_f32: u64,
    /// 16-bit atomic instructions (CAS-loop emulated).
    pub atomics_f16: u64,
    /// Extra serialization cycles charged by atomic conflicts.
    pub atomic_conflict_cycles: f64,
    /// Non-finite (INF/NaN) values this warp produced in its functional
    /// output — numeric-health telemetry (§3.1.3 overflow tracking), not a
    /// timing input.
    pub nonfinite_values: u64,
}

impl WarpCounters {
    /// Merge another warp's counters into this one.
    pub fn merge(&mut self, o: &WarpCounters) {
        self.load_instrs += o.load_instrs;
        self.store_instrs += o.store_instrs;
        self.sectors_loaded += o.sectors_loaded;
        self.sectors_stored += o.sectors_stored;
        self.useful_bytes_loaded += o.useful_bytes_loaded;
        self.useful_bytes_stored += o.useful_bytes_stored;
        self.float_ops += o.float_ops;
        self.half_ops += o.half_ops;
        self.half2_ops += o.half2_ops;
        self.convert_ops += o.convert_ops;
        self.shuffles += o.shuffles;
        self.barriers += o.barriers;
        self.smem_accesses += o.smem_accesses;
        self.atomics_f32 += o.atomics_f32;
        self.atomics_f16 += o.atomics_f16;
        self.atomic_conflict_cycles += o.atomic_conflict_cycles;
        self.nonfinite_values += o.nonfinite_values;
    }

    /// Total DRAM sectors in either direction.
    pub fn sectors(&self) -> u64 {
        self.sectors_loaded + self.sectors_stored
    }

    /// Total compute instructions (all precisions + conversions).
    pub fn compute_instrs(&self) -> u64 {
        self.float_ops + self.half_ops + self.half2_ops + self.convert_ops
    }

    /// Cycles this warp spends doing useful, pipelined work: the larger of
    /// its compute stream and its memory-throughput stream (they overlap).
    pub fn warp_busy_cycles(&self, dev: &DeviceConfig) -> f64 {
        let c = &dev.cost;
        let compute = self.float_ops as f64 * c.float_op
            + self.half_ops as f64 * c.half_op
            + self.half2_ops as f64 * c.half2_op
            + self.convert_ops as f64 * c.convert_op
            + self.smem_accesses as f64 * c.smem;
        let mem_throughput = self.sectors() as f64 * c.sector_cycles
            + self.load_instrs as f64 * c.load_issue
            + self.store_instrs as f64 * c.store_issue;
        compute.max(mem_throughput)
    }

    /// Modeled execution cycles for this warp:
    /// `busy + exposed-latency + reduction + atomic`.
    ///
    /// Exposed latency: a warp needs at least `ceil(loads/MLP)` latency
    /// periods to stream its loads; barriers (every shuffle round is one)
    /// break pipelining, adding up to one latency event per
    /// barrier-delimited interval that still has loads pending. Co-resident
    /// warps hide most of it (`latency_hiding` in the cost model), which is
    /// why fewer reduction rounds (half8 SDDMM) help without making each
    /// round ruinous.
    pub fn warp_cycles(&self, dev: &DeviceConfig) -> f64 {
        let c = &dev.cost;
        let stall = if self.load_instrs == 0 {
            0.0
        } else {
            let pipelined = (self.load_instrs as f64 / c.mlp_max).ceil();
            let barrier_limited = ((self.barriers + 1) as f64).min(self.load_instrs as f64);
            pipelined.max(barrier_limited) * c.mem_latency / c.latency_hiding.max(1.0)
        };
        let reduction = self.shuffles as f64 * c.shuffle;
        let atomic = self.atomics_f32 as f64 * c.atomic_f32
            + self.atomics_f16 as f64 * c.atomic_f32 * c.atomic_f16_mult
            + self.atomic_conflict_cycles;
        self.warp_busy_cycles(dev) + stall + reduction + atomic
    }
}

/// Aggregated result of one kernel launch.
#[derive(Clone, Debug)]
pub struct KernelStats {
    /// Kernel name (for reports).
    pub name: String,
    /// Number of CTAs launched.
    pub num_ctas: usize,
    /// Warps per CTA.
    pub warps_per_cta: usize,
    /// Sum of all warps' counters.
    pub totals: WarpCounters,
    /// Modeled kernel duration in cycles.
    pub cycles: f64,
    /// Modeled kernel duration in microseconds.
    pub time_us: f64,
    /// Achieved DRAM bandwidth as % of peak (NCU "memory throughput").
    pub mem_bw_utilization: f64,
    /// Compute issue-slot occupancy as % (NCU "SM throughput").
    pub sm_utilization: f64,
    /// Launch-overhead charges folded into `cycles`: 1 per kernel, summed
    /// by [`Self::then`]. Replay strips exactly this many (the CUDA-graph
    /// effect) via [`Self::without_launch_overhead`].
    pub launches: usize,
}

impl KernelStats {
    /// Build the aggregate from per-CTA times and merged counters.
    /// `busy_cycles` / `warp_cycles_total` are Σ over all warps of
    /// [`WarpCounters::warp_busy_cycles`] / [`WarpCounters::warp_cycles`].
    pub fn from_ctas(
        name: &str,
        dev: &DeviceConfig,
        warps_per_cta: usize,
        cta_times: &[f64],
        totals: WarpCounters,
        busy_cycles: f64,
        warp_cycles_total: f64,
    ) -> KernelStats {
        let slots = dev.wave_slots().max(1);
        // Wave model: CTAs are scheduled in waves of `slots`; a wave lasts
        // as long as its slowest CTA.
        let mut sm_cycles = 0.0;
        for wave in cta_times.chunks(slots) {
            sm_cycles += wave.iter().copied().fold(0.0f64, f64::max);
        }
        // Device-wide DRAM floor: the whole kernel cannot finish faster
        // than its total traffic at peak bandwidth.
        let total_bytes = (totals.sectors() * dev.sector_bytes) as f64;
        let mem_floor = total_bytes / dev.dram_bytes_per_cycle;
        let cycles = sm_cycles.max(mem_floor) + dev.cost.launch_overhead;
        let time_us = dev.cycles_to_us(cycles);
        let mem_bw_utilization = if cycles > 0.0 {
            100.0 * (total_bytes / cycles) / dev.dram_bytes_per_cycle
        } else {
            0.0
        };
        // SM% as the busy fraction: time warps spend streaming work rather
        // than stalled on latency, barriers, or (especially) atomics —
        // which is what separates the systems in the paper's Fig. 10.
        let sm_utilization = if warp_cycles_total > 0.0 {
            (100.0 * busy_cycles / warp_cycles_total).min(100.0)
        } else {
            0.0
        };
        KernelStats {
            name: name.to_string(),
            num_ctas: cta_times.len(),
            warps_per_cta,
            totals,
            cycles,
            time_us,
            mem_bw_utilization,
            sm_utilization,
            launches: 1,
        }
    }

    /// Stats for a wall-clock-measured run (the fast execution backend):
    /// no modeled cycles, no counters, `time_us` is elapsed real time.
    pub fn wallclock(
        name: &str,
        num_ctas: usize,
        warps_per_cta: usize,
        elapsed: std::time::Duration,
    ) -> KernelStats {
        KernelStats {
            name: name.to_string(),
            num_ctas,
            warps_per_cta,
            totals: WarpCounters::default(),
            cycles: 0.0,
            time_us: elapsed.as_secs_f64() * 1e6,
            mem_bw_utilization: 0.0,
            sm_utilization: 0.0,
            launches: 1,
        }
    }

    /// Replay accounting (the CUDA-graph effect): strip the per-launch
    /// overhead folded into `cycles` — once per composed launch — and
    /// return the adjusted stats plus the modeled cycles saved. Wall-clock
    /// stats carry no modeled cycles and pass through unchanged (the fast
    /// backend's replay win is the skipped dispatch/tuner work, not
    /// modeled time).
    pub fn without_launch_overhead(&self, dev: &DeviceConfig) -> (KernelStats, f64) {
        if self.cycles <= 0.0 || self.launches == 0 {
            return (self.clone(), 0.0);
        }
        let saved = (dev.cost.launch_overhead * self.launches as f64).min(self.cycles);
        let mut out = self.clone();
        out.cycles = self.cycles - saved;
        out.time_us = dev.cycles_to_us(out.cycles);
        out.launches = 0;
        let total_bytes = (self.totals.sectors() * dev.sector_bytes) as f64;
        out.mem_bw_utilization = if out.cycles > 0.0 {
            (100.0 * (total_bytes / out.cycles) / dev.dram_bytes_per_cycle).min(100.0)
        } else {
            0.0
        };
        (out, saved)
    }

    /// Total DRAM bytes moved.
    pub fn dram_bytes(&self) -> u64 {
        self.totals.sectors() * 32
    }

    /// Combine two kernel stats sequentially (e.g. main + follow-up
    /// kernel): times add, counters merge, utilization is re-averaged by
    /// time weight. Wall-clock stats (zero modeled cycles on both sides)
    /// compose without producing NaN weights.
    pub fn then(&self, next: &KernelStats) -> KernelStats {
        let mut totals = self.totals.clone();
        totals.merge(&next.totals);
        let cycles = self.cycles + next.cycles;
        let time_us = self.time_us + next.time_us;
        let (w0, w1) =
            if cycles > 0.0 { (self.cycles / cycles, next.cycles / cycles) } else { (0.0, 0.0) };
        KernelStats {
            name: format!("{}+{}", self.name, next.name),
            num_ctas: self.num_ctas + next.num_ctas,
            warps_per_cta: self.warps_per_cta,
            totals,
            cycles,
            time_us,
            mem_bw_utilization: self.mem_bw_utilization * w0 + next.mem_bw_utilization * w1,
            sm_utilization: self.sm_utilization * w0 + next.sm_utilization * w1,
            launches: self.launches + next.launches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::tiny()
    }

    #[test]
    fn merge_adds_fields() {
        let mut a =
            WarpCounters { load_instrs: 3, sectors_loaded: 12, half2_ops: 5, ..Default::default() };
        let b =
            WarpCounters { load_instrs: 2, sectors_loaded: 4, shuffles: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.load_instrs, 5);
        assert_eq!(a.sectors_loaded, 16);
        assert_eq!(a.half2_ops, 5);
        assert_eq!(a.shuffles, 7);
    }

    #[test]
    fn warp_cycles_monotone_in_work() {
        let d = dev();
        let small =
            WarpCounters { load_instrs: 4, sectors_loaded: 16, float_ops: 8, ..Default::default() };
        let mut big = small.clone();
        big.sectors_loaded = 64;
        big.float_ops = 64;
        assert!(big.warp_cycles(&d) > small.warp_cycles(&d));
    }

    #[test]
    fn more_barriers_expose_more_latency() {
        let d = dev();
        let few = WarpCounters { load_instrs: 64, barriers: 4, shuffles: 0, ..Default::default() };
        let many =
            WarpCounters { load_instrs: 64, barriers: 32, shuffles: 0, ..Default::default() };
        assert!(many.warp_cycles(&d) > few.warp_cycles(&d));
    }

    #[test]
    fn half_atomics_cost_more_than_float() {
        let d = dev();
        let f32a = WarpCounters { atomics_f32: 100, ..Default::default() };
        let f16a = WarpCounters { atomics_f16: 100, ..Default::default() };
        assert!(f16a.warp_cycles(&d) > 2.0 * f32a.warp_cycles(&d));
    }

    #[test]
    fn wave_model_counts_waves() {
        let d = dev(); // 2 slots
        let totals = WarpCounters::default();
        // 4 equal CTAs on 2 slots: 2 waves.
        let s = KernelStats::from_ctas(
            "k",
            &d,
            1,
            &[100.0, 100.0, 100.0, 100.0],
            totals.clone(),
            0.0,
            0.0,
        );
        let one = KernelStats::from_ctas("k", &d, 1, &[100.0, 100.0], totals, 0.0, 0.0);
        assert!((s.cycles - one.cycles - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mem_floor_binds_when_traffic_is_huge() {
        let d = dev(); // 64 B/cycle
        let totals = WarpCounters { sectors_loaded: 1_000_000, ..Default::default() };
        let s = KernelStats::from_ctas("k", &d, 1, &[10.0], totals, 0.0, 0.0);
        let floor = 1_000_000.0 * 32.0 / 64.0;
        assert!(s.cycles >= floor);
        assert!(s.mem_bw_utilization > 90.0);
    }

    #[test]
    fn utilization_bounded() {
        let d = dev();
        let totals = WarpCounters { float_ops: 10, sectors_loaded: 5, ..Default::default() };
        let s = KernelStats::from_ctas("k", &d, 1, &[50.0], totals, 25.0, 50.0);
        assert!(s.mem_bw_utilization >= 0.0 && s.mem_bw_utilization <= 100.0);
        assert!(s.sm_utilization >= 0.0 && s.sm_utilization <= 100.0);
    }

    #[test]
    fn then_composes_sequentially() {
        let d = dev();
        let a = KernelStats::from_ctas(
            "a",
            &d,
            1,
            &[100.0],
            WarpCounters { sectors_loaded: 10, ..Default::default() },
            0.0,
            0.0,
        );
        let b = KernelStats::from_ctas(
            "b",
            &d,
            1,
            &[200.0],
            WarpCounters { sectors_loaded: 20, ..Default::default() },
            0.0,
            0.0,
        );
        let c = a.then(&b);
        assert!((c.cycles - a.cycles - b.cycles).abs() < 1e-9);
        assert_eq!(c.totals.sectors_loaded, 30);
        assert_eq!(c.name, "a+b");
    }

    #[test]
    fn launch_overhead_strips_once_per_composed_launch() {
        let d = dev();
        let mk = |name: &str| {
            KernelStats::from_ctas(
                name,
                &d,
                1,
                &[500.0],
                WarpCounters { sectors_loaded: 10, ..Default::default() },
                0.0,
                0.0,
            )
        };
        let pair = mk("a").then(&mk("b"));
        assert_eq!(pair.launches, 2);
        let (stripped, saved) = pair.without_launch_overhead(&d);
        assert!((saved - 2.0 * d.cost.launch_overhead).abs() < 1e-9);
        assert!((stripped.cycles - (pair.cycles - saved)).abs() < 1e-9);
        assert!((stripped.time_us - d.cycles_to_us(stripped.cycles)).abs() < 1e-12);
        assert_eq!(stripped.launches, 0);
        // Idempotent once stripped.
        let (again, zero) = stripped.without_launch_overhead(&d);
        assert_eq!(zero, 0.0);
        assert_eq!(again.cycles, stripped.cycles);
        // Wall-clock stats pass through untouched.
        let w = KernelStats::wallclock("w", 1, 1, std::time::Duration::from_micros(5));
        let (w2, ws) = w.without_launch_overhead(&d);
        assert_eq!(ws, 0.0);
        assert!((w2.time_us - w.time_us).abs() < 1e-12);
    }

    #[test]
    fn wallclock_stats_compose_without_nan() {
        let a = KernelStats::wallclock("a", 4, 2, std::time::Duration::from_micros(30));
        let b = KernelStats::wallclock("b", 4, 2, std::time::Duration::from_micros(70));
        assert_eq!(a.cycles, 0.0);
        assert!((a.time_us - 30.0).abs() < 1e-9);
        let c = a.then(&b);
        assert!((c.time_us - 100.0).abs() < 1e-9);
        assert!(c.mem_bw_utilization == 0.0 && c.sm_utilization == 0.0);
        assert!(!c.mem_bw_utilization.is_nan() && !c.sm_utilization.is_nan());
    }
}
