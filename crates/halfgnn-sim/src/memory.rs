//! Warp-level memory coalescing: decompose the 32 per-thread accesses of a
//! warp instruction into distinct 32-byte DRAM sectors.
//!
//! This is the mechanism behind the paper's data-load analysis: a warp of
//! scalar half loads touches 64 bytes → 2 sectors per instruction, float
//! touches 128 B → 4 sectors, `half2` restores 128 B, and the proposed
//! `half8` moves 512 B → 16 sectors in a *single* instruction, quadrupling
//! bytes-in-flight per issue slot.

/// Number of distinct `sector_bytes`-sized sectors covered by a contiguous
/// byte range `[base, base + len)`.
pub fn sectors_contiguous(base: u64, len: u64, sector_bytes: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = base / sector_bytes;
    let last = (base + len - 1) / sector_bytes;
    last - first + 1
}

/// Number of distinct sectors touched by a gather of `elem_bytes`-sized
/// accesses at arbitrary addresses. `scratch` avoids per-call allocation in
/// hot kernels; it is cleared on entry.
pub fn sectors_gather(
    addrs: impl IntoIterator<Item = u64>,
    elem_bytes: u64,
    sector_bytes: u64,
    scratch: &mut Vec<u64>,
) -> u64 {
    scratch.clear();
    for a in addrs {
        let first = a / sector_bytes;
        let last = (a + elem_bytes - 1) / sector_bytes;
        for s in first..=last {
            scratch.push(s);
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
    scratch.len() as u64
}

/// Synthetic, non-overlapping base addresses for the tensors a kernel
/// touches, so coalescing is computed on a realistic flat address space.
#[derive(Default)]
pub struct AddrSpace {
    next: u64,
}

impl AddrSpace {
    /// Start allocating at a 256-byte-aligned, non-zero base.
    pub fn new() -> AddrSpace {
        AddrSpace { next: 0x1000 }
    }

    /// Reserve `len` elements of `elem_bytes` each; returns the base
    /// address, aligned to 256 bytes like `cudaMalloc` guarantees.
    pub fn alloc(&mut self, len: usize, elem_bytes: usize) -> u64 {
        let base = self.next;
        let bytes = (len * elem_bytes) as u64;
        self.next = (base + bytes + 255) & !255;
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_unit_stride_float_warp() {
        // 32 threads x 4B = 128 B from an aligned base: 4 sectors.
        assert_eq!(sectors_contiguous(0, 128, 32), 4);
        // Scalar half warp: 64 B: 2 sectors.
        assert_eq!(sectors_contiguous(0, 64, 32), 2);
        // half2 warp: 32 threads x 4B: back to 4 sectors.
        assert_eq!(sectors_contiguous(0, 128, 32), 4);
        // half8 warp: 32 x 16B = 512 B: 16 sectors.
        assert_eq!(sectors_contiguous(0, 512, 32), 16);
    }

    #[test]
    fn contiguous_misaligned_adds_a_sector() {
        assert_eq!(sectors_contiguous(16, 128, 32), 5);
        assert_eq!(sectors_contiguous(30, 4, 32), 2); // straddles a boundary
        assert_eq!(sectors_contiguous(31, 1, 32), 1);
        assert_eq!(sectors_contiguous(0, 0, 32), 0);
    }

    #[test]
    fn gather_broadcast_is_one_sector() {
        let mut scratch = Vec::new();
        let addrs = vec![100u64; 32];
        assert_eq!(sectors_gather(addrs, 4, 32, &mut scratch), 1);
    }

    #[test]
    fn gather_scattered_pays_per_element() {
        let mut scratch = Vec::new();
        // 32 accesses, each in its own sector (stride 128).
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        assert_eq!(sectors_gather(addrs, 4, 32, &mut scratch), 32);
    }

    #[test]
    fn gather_of_contiguous_matches_contiguous() {
        let mut scratch = Vec::new();
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(sectors_gather(addrs, 4, 32, &mut scratch), sectors_contiguous(0, 128, 32));
    }

    #[test]
    fn gather_element_straddling_counts_both() {
        let mut scratch = Vec::new();
        assert_eq!(sectors_gather([30u64], 4, 32, &mut scratch), 2);
    }

    #[test]
    fn addr_space_is_disjoint_and_aligned() {
        let mut a = AddrSpace::new();
        let x = a.alloc(1000, 4);
        let y = a.alloc(10, 2);
        let z = a.alloc(1, 1);
        assert!(x + 4000 <= y, "overlap");
        assert!(y + 20 <= z, "overlap");
        assert_eq!(x % 256, 0);
        assert_eq!(y % 256, 0);
        assert_eq!(z % 256, 0);
    }
}
