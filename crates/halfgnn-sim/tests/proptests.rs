//! Property-based invariants of the cost model: coalescing arithmetic,
//! timing monotonicity, and aggregation consistency.

use halfgnn_sim::launch::{launch, LaunchParams};
use halfgnn_sim::memory::{sectors_contiguous, sectors_gather, AddrSpace};
use halfgnn_sim::{DeviceConfig, WarpCounters};
use proptest::prelude::*;

proptest! {
    #[test]
    fn contiguous_sector_count_bounds(base in 0u64..1_000_000, len in 1u64..10_000) {
        let s = sectors_contiguous(base, len, 32);
        // At least ceil(len/32), at most one extra for misalignment.
        prop_assert!(s >= len.div_ceil(32));
        prop_assert!(s <= len.div_ceil(32) + 1);
    }

    #[test]
    fn gather_never_beats_contiguous(addrs in prop::collection::vec(0u64..100_000, 1..64)) {
        // A gather of k elements covers at least the sectors of the same
        // bytes laid out contiguously, and at most one sector set per elem.
        let mut scratch = Vec::new();
        let k = addrs.len() as u64;
        let s = sectors_gather(addrs.iter().copied(), 4, 32, &mut scratch);
        prop_assert!(s >= 1);
        prop_assert!(s <= 2 * k); // 4B elements straddle at most 2 sectors
    }

    #[test]
    fn gather_is_permutation_invariant(mut addrs in prop::collection::vec(0u64..50_000, 1..48)) {
        let mut scratch = Vec::new();
        let a = sectors_gather(addrs.iter().copied(), 2, 32, &mut scratch);
        addrs.reverse();
        let b = sectors_gather(addrs.iter().copied(), 2, 32, &mut scratch);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn warp_cycles_monotone_in_every_counter(
        loads in 0u64..200, sectors in 0u64..500, ops in 0u64..300,
        shuffles in 0u64..50, atomics in 0u64..40,
    ) {
        let dev = DeviceConfig::a100_like();
        let base = WarpCounters {
            load_instrs: loads,
            sectors_loaded: sectors,
            half2_ops: ops,
            shuffles,
            barriers: shuffles,
            atomics_f16: atomics,
            ..Default::default()
        };
        let t0 = base.warp_cycles(&dev);
        for grow in 0..5 {
            let mut bigger = base.clone();
            match grow {
                0 => bigger.load_instrs += 8,
                1 => bigger.sectors_loaded += 64,
                2 => bigger.half2_ops += 64,
                3 => { bigger.shuffles += 8; bigger.barriers += 8; }
                _ => bigger.atomics_f16 += 8,
            }
            prop_assert!(
                bigger.warp_cycles(&dev) >= t0,
                "growing counter {grow} decreased time"
            );
        }
    }

    #[test]
    fn busy_never_exceeds_total(loads in 0u64..100, sectors in 0u64..300, ops in 0u64..200) {
        let dev = DeviceConfig::a100_like();
        let c = WarpCounters {
            load_instrs: loads,
            sectors_loaded: sectors,
            float_ops: ops,
            ..Default::default()
        };
        prop_assert!(c.warp_busy_cycles(&dev) <= c.warp_cycles(&dev) + 1e-9);
    }

    #[test]
    fn kernel_time_scales_with_grid(ctas in 1usize..400) {
        // Same per-CTA work: more CTAs can never be faster.
        let dev = DeviceConfig::a100_like();
        let run = |n: usize| {
            let (_, s) = launch(&dev, "k", LaunchParams { num_ctas: n, warps_per_cta: 2 }, |cta| {
                for w in 0..2 {
                    let mut warp = cta.warp(w);
                    warp.load_contiguous(0, 64, 4);
                    warp.float_ops(16);
                }
            });
            s.cycles
        };
        prop_assert!(run(ctas + 1) >= run(ctas));
    }

    #[test]
    fn merge_is_associative_on_counters(a in 0u64..50, b in 0u64..50, c in 0u64..50) {
        let mk = |n: u64| WarpCounters { load_instrs: n, sectors_loaded: 2 * n, ..Default::default() };
        let mut left = mk(a);
        left.merge(&mk(b));
        left.merge(&mk(c));
        let mut right = mk(b);
        right.merge(&mk(c));
        let mut right2 = mk(a);
        right2.merge(&right);
        prop_assert_eq!(left, right2);
    }

    #[test]
    fn addr_space_allocations_never_overlap(sizes in prop::collection::vec(1usize..5_000, 1..20)) {
        let mut space = AddrSpace::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for (i, &len) in sizes.iter().enumerate() {
            let elem = [1usize, 2, 4, 8][i % 4];
            let base = space.alloc(len, elem);
            let end = base + (len * elem) as u64;
            for &(b, e) in &ranges {
                prop_assert!(end <= b || base >= e, "overlap [{base},{end}) vs [{b},{e})");
            }
            ranges.push((base, end));
        }
    }
}
