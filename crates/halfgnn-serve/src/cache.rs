//! The vertex-keyed LRU embedding cache.
//!
//! Entries are final-layer embeddings (logit rows). The byte budget buys
//! `budget / (width × elem_bytes)` entries, so at the same budget an f16
//! cache holds exactly 2× the vertices of an f32 cache — the serving-side
//! restatement of the paper's memory headline. The price of f16 entries
//! is one round-to-nearest-even quantization per insert: hits return the
//! widened f16 values, which the latency model treats as equivalent (the
//! argmax class is almost always preserved; exactness-sensitive callers
//! use [`CachePrecision::F32`]).
//!
//! Eviction and iteration are fully deterministic: recency is a
//! monotonic u64 tick and the LRU index is a `BTreeMap<tick, vertex>`,
//! so the same request stream always evicts the same entries. The
//! backing `HashMap` is never iterated.

use halfgnn_half::slice::{f32_slice_to_half, half_slice_to_f32};
use halfgnn_half::Half;
use std::collections::{BTreeMap, HashMap};

/// Entry storage precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePrecision {
    F16,
    F32,
}

impl CachePrecision {
    pub fn elem_bytes(self) -> usize {
        match self {
            CachePrecision::F16 => 2,
            CachePrecision::F32 => 4,
        }
    }

    /// CLI tag.
    pub fn tag(self) -> &'static str {
        match self {
            CachePrecision::F16 => "f16",
            CachePrecision::F32 => "f32",
        }
    }

    /// Parse a CLI tag.
    pub fn parse(s: &str) -> Option<CachePrecision> {
        match s {
            "f16" | "half" => Some(CachePrecision::F16),
            "f32" | "float" => Some(CachePrecision::F32),
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
enum Entry {
    F16(Vec<Half>),
    F32(Vec<f32>),
}

/// Lifetime counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

/// Deterministic vertex-keyed LRU cache of embedding rows.
#[derive(Clone, Debug)]
pub struct EmbeddingCache {
    width: usize,
    precision: CachePrecision,
    capacity: usize,
    entries: HashMap<u32, (u64, Entry)>,
    lru: BTreeMap<u64, u32>,
    tick: u64,
    pub stats: CacheStats,
}

impl EmbeddingCache {
    /// A cache holding rows of `width` elements within `budget_bytes` of
    /// entry payload (budget counts payload bytes only, so the f16/f32
    /// capacity ratio is exactly the element-size ratio). A budget below
    /// one entry disables the cache: every lookup misses.
    pub fn new(budget_bytes: usize, width: usize, precision: CachePrecision) -> EmbeddingCache {
        let entry_bytes = width.max(1) * precision.elem_bytes();
        EmbeddingCache {
            width,
            precision,
            capacity: budget_bytes / entry_bytes,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Entries the budget buys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn precision(&self) -> CachePrecision {
        self.precision
    }

    /// Is `v` currently cached? (No counter or recency effect.)
    pub fn contains(&self, v: u32) -> bool {
        self.entries.contains_key(&v)
    }

    /// Read without counting or touching recency (tests, introspection).
    pub fn peek(&self, v: u32) -> Option<Vec<f32>> {
        self.entries.get(&v).map(|(_, e)| match e {
            Entry::F16(h) => half_slice_to_f32(h),
            Entry::F32(x) => x.clone(),
        })
    }

    /// Look up `v`, counting a hit or miss and refreshing recency on hit.
    pub fn get(&mut self, v: u32) -> Option<Vec<f32>> {
        let Some((tick, entry)) = self.entries.get_mut(&v) else {
            self.stats.misses += 1;
            return None;
        };
        self.stats.hits += 1;
        let out = match entry {
            Entry::F16(h) => half_slice_to_f32(h),
            Entry::F32(x) => x.clone(),
        };
        self.lru.remove(tick);
        self.tick += 1;
        *tick = self.tick;
        self.lru.insert(self.tick, v);
        Some(out)
    }

    /// Insert (or refresh) `v`'s embedding, evicting least-recently-used
    /// entries as needed. A zero-capacity cache ignores inserts.
    pub fn insert(&mut self, v: u32, emb: &[f32]) {
        assert_eq!(emb.len(), self.width, "embedding width mismatch");
        if self.capacity == 0 {
            return;
        }
        if let Some((old_tick, _)) = self.entries.remove(&v) {
            self.lru.remove(&old_tick);
        }
        while self.entries.len() >= self.capacity {
            let (&oldest, &victim) = self.lru.iter().next().expect("lru tracks entries");
            self.lru.remove(&oldest);
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
        let entry = match self.precision {
            CachePrecision::F16 => Entry::F16(f32_slice_to_half(emb)),
            CachePrecision::F32 => Entry::F32(emb.to_vec()),
        };
        self.tick += 1;
        self.entries.insert(v, (self.tick, entry));
        self.lru.insert(self.tick, v);
        self.stats.insertions += 1;
    }

    /// Drop every cached entry in `vertices`; returns how many were
    /// present (each counted as an invalidation).
    pub fn invalidate(&mut self, vertices: &[u32]) -> usize {
        let mut dropped = 0;
        for &v in vertices {
            if let Some((tick, _)) = self.entries.remove(&v) {
                self.lru.remove(&tick);
                dropped += 1;
            }
        }
        self.stats.invalidations += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(seed: u32, width: usize) -> Vec<f32> {
        (0..width).map(|i| (seed as f32 + i as f32 * 0.25) * 0.125).collect()
    }

    #[test]
    fn f16_fits_exactly_twice_the_entries_of_f32() {
        let budget = 4096;
        for width in [2usize, 7, 16] {
            let h = EmbeddingCache::new(budget, width, CachePrecision::F16);
            let f = EmbeddingCache::new(budget, width, CachePrecision::F32);
            assert_eq!(h.capacity(), 2 * f.capacity(), "width {width}");
            assert!(f.capacity() > 0);
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        // Capacity 3 (f32, width 2, 24 bytes).
        let mut c = EmbeddingCache::new(24, 2, CachePrecision::F32);
        assert_eq!(c.capacity(), 3);
        for v in 0..3u32 {
            c.insert(v, &emb(v, 2));
        }
        // Touch 0 so 1 becomes LRU, then insert 3.
        assert!(c.get(0).is_some());
        c.insert(3, &emb(3, 2));
        assert!(c.contains(0) && c.contains(2) && c.contains(3));
        assert!(!c.contains(1), "1 was least-recently-used");
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn f32_entries_round_trip_bitwise_and_f16_entries_quantize() {
        let e = vec![0.1f32, -3.75, 65504.0, 1.0e-4];
        let mut f = EmbeddingCache::new(1024, 4, CachePrecision::F32);
        f.insert(7, &e);
        assert_eq!(
            f.get(7).unwrap().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            e.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let mut h = EmbeddingCache::new(1024, 4, CachePrecision::F16);
        h.insert(7, &e);
        let got = h.get(7).unwrap();
        let want = half_slice_to_f32(&f32_slice_to_half(&e));
        assert_eq!(got, want, "f16 hit returns the quantize-widen round trip");
    }

    #[test]
    fn invalidate_drops_exactly_the_named_entries() {
        let mut c = EmbeddingCache::new(1024, 2, CachePrecision::F32);
        for v in 0..10u32 {
            c.insert(v, &emb(v, 2));
        }
        assert_eq!(c.invalidate(&[2, 5, 100]), 2);
        assert!(!c.contains(2) && !c.contains(5));
        assert!(c.contains(3) && c.contains(9));
        assert_eq!(c.stats.invalidations, 2);
        // Re-inserting an invalidated vertex works and recency survives.
        c.insert(2, &emb(2, 2));
        assert!(c.contains(2));
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut c = EmbeddingCache::new(0, 4, CachePrecision::F16);
        assert_eq!(c.capacity(), 0);
        c.insert(1, &emb(1, 4));
        assert!(c.get(1).is_none());
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.insertions, 0);
    }

    #[test]
    fn hit_rate_counts_only_get_traffic() {
        let mut c = EmbeddingCache::new(1024, 2, CachePrecision::F32);
        c.insert(1, &emb(1, 2));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!((c.stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
