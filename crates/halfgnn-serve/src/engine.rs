//! The serving engine: closed-loop request processing over a trained
//! two-layer GCN.
//!
//! Per miss batch: coalesce (batcher) → gather the ball's feature rows →
//! forward-only GCN on the induced subgraph → per-request logit rows.
//! Everything is modeled-time accounting: kernel µs from the cost model,
//! remote-shard halo-fetch µs from the interconnect model, queueing from
//! the single-accelerator closed loop in [`ServeEngine::serve_trace`].
//! No gradient, optimizer, or activation-stash buffers exist anywhere on
//! this path — which is what makes the arena-planned inference footprint
//! (see [`ServeEngine::inference_footprint`]) a fraction of a training
//! step's.

use crate::batcher::{coalesce, Batch};
use crate::cache::EmbeddingCache;
use crate::config::{ServeConfig, ServeConfigError};
use halfgnn_exec::{ExecCtx, ReplaySummary};
use halfgnn_graph::reach::khop_ball;
use halfgnn_graph::{partition, Csr, DeltaCsr, ShardPlan, VertexId};
use halfgnn_half::slice::f32_slice_to_half;
use halfgnn_half::Half;
use halfgnn_nn::forward::{gcn_forward_f32, gcn_forward_half};
use halfgnn_nn::graphdata::GraphView;
use halfgnn_nn::models::{Dispatch, GcnNorm};
use halfgnn_nn::params::TwoLayerParams;
use halfgnn_nn::snapshot::ModelSnapshot;
use halfgnn_nn::trainer::ModelKind;
use halfgnn_sim::{CommsLedger, DeviceConfig, Interconnect, TrafficClass};
use halfgnn_tensor::Ops;
use halfgnn_tune::{Tuner, TunerCounters};

/// Modeled cost of answering a request from the embedding cache (a
/// host-side hash probe; never touches the accelerator queue).
pub const CACHE_LOOKUP_US: f64 = 0.5;

/// Lifetime counters for one engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests processed by [`ServeEngine::serve_trace`].
    pub requests: u64,
    /// Requests answered by the cache.
    pub cache_hits: u64,
    /// Batched kernel launches (miss batches).
    pub batches: u64,
    /// Miss requests served through those batches.
    pub coalesced_requests: u64,
    /// Batches replayed from the captured steady-state kernel sequence.
    pub replayed_batches: u64,
    /// Remote-shard halo feature bytes fetched.
    pub halo_bytes: u64,
    /// Modeled halo-fetch time, µs.
    pub halo_time_us: f64,
    /// Modeled kernel time, µs.
    pub kernel_time_us: f64,
    /// Largest coalesced subgraph (vertices).
    pub max_batch_vertices: usize,
    /// Cache entries dropped by edge-insert invalidation.
    pub invalidated_entries: u64,
}

/// Result of serving one coalesced batch.
pub struct ServedBatch {
    /// One logit row per *request*, in request order (duplicates get
    /// identical rows).
    pub outputs: Vec<Vec<f32>>,
    /// Modeled halo-fetch time for the batch, µs.
    pub fetch_us: f64,
    /// Modeled kernel time for the batch, µs.
    pub kernel_us: f64,
    /// Coalesced subgraph size.
    pub batch_vertices: usize,
    /// Whether this batch replayed the captured kernel sequence.
    pub replayed: bool,
}

struct CaptureState {
    n: usize,
    nnz: usize,
    ctx: ExecCtx,
}

/// A forward-only inference engine over one trained model and one
/// (mutable, delta-overlaid) serving graph.
pub struct ServeEngine<'d> {
    dev: &'d DeviceConfig,
    cfg: ServeConfig,
    graph: DeltaCsr,
    x: Vec<f32>,
    xh: Vec<Half>,
    f_in: usize,
    params: TwoLayerParams,
    cache: EmbeddingCache,
    plan: Option<ShardPlan>,
    ic: Option<Interconnect>,
    tuner: Option<Tuner>,
    capture: Option<CaptureState>,
    pub stats: ServeStats,
}

impl<'d> ServeEngine<'d> {
    /// Build an engine over `adj` (the symmetric serving graph, typically
    /// Â = A + Aᵀ + I), per-vertex `features` (`n × f_in` row-major), and
    /// trained `params`. Rejects invalid configs and half-precision
    /// serving of odd-width models by name.
    pub fn new(
        dev: &'d DeviceConfig,
        adj: &Csr,
        features: &[f32],
        f_in: usize,
        params: TwoLayerParams,
        cfg: ServeConfig,
    ) -> Result<ServeEngine<'d>, ServeConfigError> {
        cfg.validate()?;
        assert!(adj.is_symmetric(), "serving graph must be symmetric");
        assert_eq!(features.len(), adj.num_rows() * f_in, "feature table shape");
        let is_half = cfg.precision.is_half();
        if is_half
            && (!f_in.is_multiple_of(2)
                || !params.classes.is_multiple_of(2)
                || !params.hidden.is_multiple_of(2))
        {
            return Err(ServeConfigError::OddWidthForHalf);
        }
        let xh = if is_half { f32_slice_to_half(features) } else { Vec::new() };
        let cache = EmbeddingCache::new(cfg.cache_bytes, params.classes, cfg.cache_precision);
        let (plan, ic) = if cfg.shards > 1 {
            (
                Some(partition(adj, cfg.shards, cfg.partition)),
                Some(Interconnect::nvlink_like(cfg.shards, cfg.topology)),
            )
        } else {
            (None, None)
        };
        let tuner = cfg.tuning.then(|| Tuner::auto(dev));
        Ok(ServeEngine {
            dev,
            cfg,
            graph: DeltaCsr::new(adj.clone()),
            x: features.to_vec(),
            xh,
            f_in,
            params,
            cache,
            plan,
            ic,
            tuner,
            capture: None,
            stats: ServeStats::default(),
        })
    }

    /// Build from a trainer-written snapshot (the production handoff).
    pub fn from_snapshot(
        dev: &'d DeviceConfig,
        adj: &Csr,
        features: &[f32],
        f_in: usize,
        snap: &ModelSnapshot,
        cfg: ServeConfig,
    ) -> Result<ServeEngine<'d>, ServeConfigError> {
        if !matches!(snap.model, ModelKind::Gcn) {
            return Err(ServeConfigError::SnapshotModelUnsupported);
        }
        let mut params = TwoLayerParams::new(snap.f_in, snap.hidden, snap.classes, 0);
        if snap.len() != params.num_params() || snap.f_in != f_in {
            return Err(ServeConfigError::SnapshotDimsMismatch);
        }
        params.set_flat(&snap.flat_f32());
        ServeEngine::new(dev, adj, features, f_in, params, cfg)
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    pub fn cache(&self) -> &EmbeddingCache {
        &self.cache
    }

    /// Mutable cache access (warm-up, manual installs, tests).
    pub fn cache_mut(&mut self) -> &mut EmbeddingCache {
        &mut self.cache
    }

    pub fn tuner_counters(&self) -> Option<TunerCounters> {
        self.tuner.as_ref().map(Tuner::counters)
    }

    pub fn num_vertices(&self) -> usize {
        self.graph.num_rows()
    }

    /// Serve `requests` as one coalesced batch, bypassing the cache and
    /// the closed-loop clock — the pure compute path. Deterministic and
    /// bitwise-equal to serving each request alone.
    pub fn embed(&mut self, requests: &[VertexId]) -> ServedBatch {
        let batch = coalesce(&self.graph, requests, self.cfg.hops);
        let (logits, kernel_us, replayed) = self.forward_batch(&batch);
        let (halo_bytes, fetch_us) = self.halo_fetch(&batch, requests[0]);
        let c = self.params.classes;
        let outputs: Vec<Vec<f32>> = requests
            .iter()
            .map(|&v| {
                let row = batch.local_of(v);
                logits[row * c..(row + 1) * c].to_vec()
            })
            .collect();
        self.stats.batches += 1;
        self.stats.coalesced_requests += requests.len() as u64;
        self.stats.halo_bytes += halo_bytes;
        self.stats.halo_time_us += fetch_us;
        self.stats.kernel_time_us += kernel_us;
        self.stats.max_batch_vertices = self.stats.max_batch_vertices.max(batch.n());
        if replayed {
            self.stats.replayed_batches += 1;
        }
        ServedBatch { outputs, fetch_us, kernel_us, batch_vertices: batch.n(), replayed }
    }

    /// The batched forward: gather the ball's feature rows, run the
    /// forward-only GCN on the induced subgraph. Handles steady-state
    /// capture/replay when the config asks for it.
    fn forward_batch(&mut self, batch: &Batch) -> (Vec<f32>, f64, bool) {
        // Capture/replay bookkeeping. Capture the first batch; replay any
        // later batch whose (n, nnz) matches the captured shape — an
        // identical subgraph shape yields an identical kernel sequence.
        // Other shapes fall back to eager execution.
        enum Mode {
            Eager,
            Capture,
            Replay,
        }
        let mode = if !self.cfg.replay {
            Mode::Eager
        } else {
            match &self.capture {
                None => Mode::Capture,
                Some(cs) if (cs.n, cs.nnz) == (batch.n(), batch.nnz()) => Mode::Replay,
                Some(_) => Mode::Eager,
            }
        };
        if matches!(mode, Mode::Capture) {
            self.capture =
                Some(CaptureState { n: batch.n(), nnz: batch.nnz(), ctx: ExecCtx::capturing() });
        }
        let exec = match mode {
            Mode::Eager => None,
            Mode::Capture | Mode::Replay => self.capture.as_ref().map(|cs| &cs.ctx),
        };
        if let Some(ctx) = exec {
            ctx.begin_epoch();
        }

        let g = GraphView::full(&batch.csr);
        // Vertex-parallel SpMM is what makes coalescing bitwise-invisible:
        // its neighbor groups never cross rows, so a row's summation order
        // is batch-composition-independent. The edge-tiled skeletons cut
        // rows at global-edge-offset tile boundaries and would drift by
        // ULPs as the batch around a request changes.
        let dispatch = match &self.tuner {
            Some(t) => Dispatch::tuned(self.cfg.precision, t),
            None => Dispatch::untuned(self.cfg.precision),
        }
        .with_vertex_parallel_spmm(true)
        .with_exec(exec);
        let mut ops = Ops::new(self.dev).with_exec(exec);
        let logits = if self.cfg.precision.is_half() {
            let xs = ops.gather_rows_half(&self.xh, self.f_in, &batch.ball);
            gcn_forward_half(&mut ops, &g, &self.params, &xs, dispatch, GcnNorm::Right)
        } else {
            let xs = ops.gather_rows_f32(&self.x, self.f_in, &batch.ball);
            gcn_forward_f32(&mut ops, &g, &self.params, &xs, dispatch, GcnNorm::Right)
        };
        let kernel_us = ops.total_time_us();

        let replayed = match mode {
            Mode::Eager => false,
            Mode::Capture => {
                self.capture.as_ref().expect("capture state").ctx.seal();
                false
            }
            Mode::Replay => {
                self.capture.as_ref().expect("capture state").ctx.end_epoch();
                true
            }
        };
        (logits, kernel_us, replayed)
    }

    /// Remote-shard halo fetch for one batch: the batch runs on the home
    /// shard of its first request; every ball vertex owned elsewhere
    /// ships its feature row over the interconnect (2 B/element in half,
    /// 4 B in float — the FP16 comms win, serving edition). Per-source
    /// rows coalesce into one message.
    fn halo_fetch(&self, batch: &Batch, first_request: VertexId) -> (u64, f64) {
        let (Some(plan), Some(ic)) = (&self.plan, &self.ic) else {
            return (0, 0.0);
        };
        let home = plan.owner_of(first_request as usize);
        let elem = if self.cfg.precision.is_half() { 2 } else { 4 };
        let mut per_src = vec![0u64; plan.num_shards()];
        for &v in &batch.ball {
            let owner = plan.owner_of(v as usize);
            if owner != home {
                per_src[owner] += (self.f_in * elem) as u64;
            }
        }
        let mut ledger = CommsLedger::new();
        for (src, &bytes) in per_src.iter().enumerate() {
            if bytes > 0 {
                ledger.message(ic, TrafficClass::Halo, src, home, bytes);
            }
        }
        (ledger.halo_bytes, ledger.total_time_us())
    }

    /// Ingest one undirected edge through the delta overlay and drop
    /// every cache entry the insert can have staled. Returns the number
    /// of directed edges actually new.
    ///
    /// Staleness bound: the insert changes rows (and degrees) of `u` and
    /// `v` only; a right-norm depth-`k` GCN's logits at `w` read row
    /// structure of vertices within `k − 1` hops of `w`, so on the
    /// symmetric serving graph the stale set is the `(hops − 1)`-ball of
    /// `{u, v}` — computed on the *post*-insert graph, whose ball is a
    /// superset of the pre-insert one (adding edges only shrinks
    /// distances).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> usize {
        let added = self.graph.insert_undirected(u, v);
        if added > 0 {
            let stale = khop_ball(&self.graph, &[u, v], self.cfg.hops - 1);
            self.stats.invalidated_entries += self.cache.invalidate(&stale) as u64;
        }
        added
    }

    /// Capture one batch's forward under a fresh exec context and return
    /// the arena-planned footprint — the inference working set the
    /// tentpole compares against a training step's peak.
    pub fn inference_footprint(&mut self, requests: &[VertexId]) -> ReplaySummary {
        let batch = coalesce(&self.graph, requests, self.cfg.hops);
        let ctx = ExecCtx::capturing();
        ctx.begin_epoch();
        let g = GraphView::full(&batch.csr);
        let dispatch = match &self.tuner {
            Some(t) => Dispatch::tuned(self.cfg.precision, t),
            None => Dispatch::untuned(self.cfg.precision),
        }
        .with_vertex_parallel_spmm(true)
        .with_exec(Some(&ctx));
        let mut ops = Ops::new(self.dev).with_exec(Some(&ctx));
        if self.cfg.precision.is_half() {
            let xs = ops.gather_rows_half(&self.xh, self.f_in, &batch.ball);
            gcn_forward_half(&mut ops, &g, &self.params, &xs, dispatch, GcnNorm::Right);
        } else {
            let xs = ops.gather_rows_f32(&self.x, self.f_in, &batch.ball);
            gcn_forward_f32(&mut ops, &g, &self.params, &xs, dispatch, GcnNorm::Right);
        }
        ctx.seal();
        ctx.summary()
    }

    /// Replay a request trace through the closed loop: one accelerator,
    /// FIFO admission, up to `batch_window` queued misses coalesced per
    /// launch. Cache hits are answered at arrival by the front end
    /// ([`CACHE_LOOKUP_US`]); completed batches install their requested
    /// vertices' embeddings. Returns per-request timings aligned with
    /// `trace`. Fully deterministic: modeled clocks only.
    pub fn serve_trace(
        &mut self,
        trace: &[halfgnn_sim::Request],
    ) -> Vec<halfgnn_sim::RequestTiming> {
        use halfgnn_sim::RequestTiming;
        let mut timings = vec![RequestTiming::default(); trace.len()];
        let mut pending: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut t_free = 0.0f64;
        let mut i = 0usize;

        // Front-end a request: cache hit → answered immediately; miss →
        // queued for the accelerator.
        macro_rules! front_end {
            ($j:expr) => {{
                let j = $j;
                self.stats.requests += 1;
                if self.cache.get(trace[j].vertex).is_some() {
                    self.stats.cache_hits += 1;
                    timings[j] = RequestTiming {
                        queue_us: 0.0,
                        fetch_us: 0.0,
                        kernel_us: CACHE_LOOKUP_US,
                        cache_hit: true,
                    };
                } else {
                    pending.push_back(j);
                }
            }};
        }

        while i < trace.len() || !pending.is_empty() {
            if pending.is_empty() {
                front_end!(i);
                i += 1;
                continue;
            }
            // The accelerator picks up the queue head as soon as both it
            // and the request are ready; everything arriving up to that
            // instant goes through the front end first (later batches see
            // embeddings installed by earlier completions).
            let start = t_free.max(trace[pending[0]].arrival_us);
            while i < trace.len() && trace[i].arrival_us <= start {
                front_end!(i);
                i += 1;
            }
            let take = pending.len().min(self.cfg.batch_window);
            let batch_idx: Vec<usize> = pending.drain(..take).collect();
            let verts: Vec<VertexId> = batch_idx.iter().map(|&j| trace[j].vertex).collect();
            let served = self.embed(&verts);
            for (&j, out) in batch_idx.iter().zip(&served.outputs) {
                timings[j] = RequestTiming {
                    queue_us: start - trace[j].arrival_us,
                    fetch_us: served.fetch_us,
                    kernel_us: served.kernel_us,
                    cache_hit: false,
                };
                self.cache.insert(trace[j].vertex, out);
            }
            t_free = start + served.fetch_us + served.kernel_us;
        }
        timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePrecision;
    use halfgnn_graph::gen;
    use halfgnn_nn::models::PrecisionMode;
    use halfgnn_sim::{latency_stats, synth_trace, TraceConfig};

    fn toy_graph(n: usize) -> (Csr, Vec<f32>) {
        let (edges, labels) = gen::sbm(&[n / 2, n / 2], 0.3, 0.05, 13);
        let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
        let x = halfgnn_graph::features::class_features(&labels, 2, 8, 1.0, 0.2, 17);
        (csr, x)
    }

    fn engine<'a>(
        dev: &'a DeviceConfig,
        csr: &Csr,
        x: &[f32],
        cfg: ServeConfig,
    ) -> ServeEngine<'a> {
        let params = TwoLayerParams::new(8, 6, 4, 3);
        ServeEngine::new(dev, csr, x, 8, params, cfg).expect("valid engine")
    }

    #[test]
    fn batched_embed_matches_sequential_bitwise_on_a_toy_graph() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let requests: Vec<u32> = vec![0, 7, 7, 23, 39];
        let mut batched = engine(&dev, &csr, &x, ServeConfig::default());
        let all = batched.embed(&requests);
        for (k, &v) in requests.iter().enumerate() {
            let mut single = engine(&dev, &csr, &x, ServeConfig::default());
            let one = single.embed(&[v]);
            assert_eq!(
                all.outputs[k].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                one.outputs[0].iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "vertex {v} diverged under coalescing"
            );
        }
    }

    #[test]
    fn zero_degree_vertices_are_servable() {
        // A graph with an isolated vertex (symmetric, no self loops): its
        // aggregation input is empty and its logits are still defined.
        let edges = vec![(0u32, 1u32), (1, 0), (1, 2), (2, 1)];
        let csr = Csr::from_edges(4, 4, &edges);
        assert_eq!(csr.degree(3), 0);
        let x: Vec<f32> = (0..4 * 8).map(|i| i as f32 * 0.01).collect();
        let dev = DeviceConfig::a100_like();
        let mut e = engine(&dev, &csr, &x, ServeConfig::default());
        let out = e.embed(&[3, 0]);
        assert!(out.outputs[0].iter().all(|v| v.is_finite()));
        let mut single = engine(&dev, &csr, &x, ServeConfig::default());
        let one = single.embed(&[3]);
        assert_eq!(out.outputs[0], one.outputs[0]);
    }

    #[test]
    fn replay_reproduces_eager_bits_and_counts_replays() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let cfg = ServeConfig { replay: true, batch_window: 1, ..ServeConfig::default() };
        let mut rep = engine(&dev, &csr, &x, cfg);
        let mut eager = engine(&dev, &csr, &x, ServeConfig::default());
        // Same vertex repeatedly: identical shape, so batch 2+ replays.
        for _ in 0..3 {
            let a = rep.embed(&[11]);
            let b = eager.embed(&[11]);
            assert_eq!(a.outputs, b.outputs, "replayed bits diverged from eager");
        }
        assert_eq!(rep.stats.replayed_batches, 2);
        // A different-shaped request falls back to eager, no panic.
        let a = rep.embed(&[0]);
        let b = eager.embed(&[0]);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(rep.stats.replayed_batches, 2);
    }

    #[test]
    fn sharded_serving_charges_halo_and_keeps_bits() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let mut single = engine(&dev, &csr, &x, ServeConfig::default());
        let mut sharded =
            engine(&dev, &csr, &x, ServeConfig { shards: 4, ..ServeConfig::default() });
        let a = single.embed(&[5, 31]);
        let b = sharded.embed(&[5, 31]);
        // Sharding the *feature table* never changes the computation.
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.fetch_us, 0.0);
        assert!(b.fetch_us > 0.0, "a 4-shard ball must fetch remote rows");
        assert!(sharded.stats.halo_bytes > 0);
    }

    #[test]
    fn closed_loop_serves_every_request_and_hits_cache_on_hot_vertices() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let cfg = ServeConfig { cache_bytes: 4096, ..ServeConfig::default() };
        let mut e = engine(&dev, &csr, &x, cfg);
        let trace = synth_trace(&TraceConfig {
            seed: 5,
            requests: 120,
            num_vertices: 40,
            mean_gap_us: 50.0,
            hot_fraction: 0.9,
            hot_vertices: 4,
        });
        let timings = e.serve_trace(&trace);
        assert_eq!(timings.len(), trace.len());
        assert!(timings.iter().all(|t| t.total_us().is_finite() && t.total_us() >= 0.0));
        assert!(e.stats.cache_hits > 0, "hot trace must hit the cache");
        assert_eq!(e.stats.requests, 120);
        assert_eq!(
            e.stats.cache_hits + e.stats.coalesced_requests,
            e.stats.requests,
            "every request is either a hit or batched"
        );
        let span = timings
            .iter()
            .zip(&trace)
            .map(|(t, r)| r.arrival_us + t.total_us())
            .fold(0.0f64, f64::max);
        let stats = latency_stats(&timings, span);
        assert!(stats.p99_us.is_finite() && stats.p99_us > 0.0);
        assert!(stats.p50_us <= stats.p99_us);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let trace = synth_trace(&TraceConfig {
            seed: 8,
            requests: 60,
            num_vertices: 40,
            mean_gap_us: 30.0,
            hot_fraction: 0.7,
            hot_vertices: 6,
        });
        let run = |cache_precision| {
            let cfg = ServeConfig { cache_bytes: 2048, cache_precision, ..ServeConfig::default() };
            let mut e = engine(&dev, &csr, &x, cfg);
            let t = e.serve_trace(&trace);
            (t.iter().map(|x| x.total_us().to_bits()).collect::<Vec<_>>(), e.stats.cache_hits)
        };
        assert_eq!(run(CachePrecision::F16), run(CachePrecision::F16));
        assert_eq!(run(CachePrecision::F32), run(CachePrecision::F32));
    }

    #[test]
    fn edge_insert_invalidates_the_stale_ball() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let cfg = ServeConfig {
            cache_bytes: 64 * 1024,
            cache_precision: CachePrecision::F32,
            ..ServeConfig::default()
        };
        let mut e = engine(&dev, &csr, &x, cfg);
        // Fill the cache with every vertex's embedding.
        let all: Vec<u32> = (0..40).collect();
        let served = e.embed(&all);
        for (&v, out) in all.iter().zip(&served.outputs) {
            e.cache.insert(v, out);
        }
        assert_eq!(e.cache().len(), 40);
        // Pick two vertices currently far apart and connect them.
        let (u, v) = (0u32, 39u32);
        let added = e.insert_edge(u, v);
        assert!(added > 0);
        // Every vertex whose embedding actually changed must be gone.
        let fresh = e.embed(&all);
        for (k, &w) in all.iter().enumerate() {
            if fresh.outputs[k] != served.outputs[k] {
                assert!(
                    !e.cache().contains(w),
                    "vertex {w} changed after insert but survived in the cache"
                );
            }
        }
        assert!(e.stats.invalidated_entries > 0);
    }

    #[test]
    fn inference_footprint_is_a_fraction_of_a_training_step() {
        use halfgnn_nn::gcn::step_f32_norm;
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let mut e = engine(&dev, &csr, &x, ServeConfig::default());
        let requests: Vec<u32> = (0..8).collect();
        let inf = e.inference_footprint(&requests);
        assert!(inf.peak_bytes > 0);

        // A training step on the same coalesced subgraph, captured the
        // same way.
        let batch = coalesce(&DeltaCsr::new(csr.clone()), &requests, crate::config::MODEL_DEPTH);
        let ctx = ExecCtx::capturing();
        ctx.begin_epoch();
        let g = GraphView::full(&batch.csr);
        let d = Dispatch::untuned(PrecisionMode::Float).with_exec(Some(&ctx));
        let mut ops = Ops::new(&dev).with_exec(Some(&ctx));
        let xs = ops.gather_rows_f32(&x, 8, &batch.ball);
        let p = TwoLayerParams::new(8, 6, 4, 3);
        let labels = vec![0u32; batch.n()];
        let mask = vec![true; batch.n()];
        step_f32_norm(&mut ops, &g, &p, &xs, &labels, &mask, d, GcnNorm::Right);
        ctx.seal();
        let train = ctx.summary();

        assert!(
            (inf.peak_bytes as f64) < 0.8 * train.peak_bytes as f64,
            "inference working set {} must be a fraction of training peak {}",
            inf.peak_bytes,
            train.peak_bytes
        );
    }

    #[test]
    fn snapshot_round_trip_builds_an_identical_engine() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let params = TwoLayerParams::new(8, 6, 4, 3);
        let snap = ModelSnapshot::from_f32(ModelKind::Gcn, 8, 6, 4, &params.flat());
        let decoded = ModelSnapshot::decode(&snap.encode()).expect("round trip");
        let mut from_snap =
            ServeEngine::from_snapshot(&dev, &csr, &x, 8, &decoded, ServeConfig::default())
                .expect("snapshot engine");
        let mut direct = ServeEngine::new(&dev, &csr, &x, 8, params, ServeConfig::default())
            .expect("direct engine");
        assert_eq!(from_snap.embed(&[4, 17]).outputs, direct.embed(&[4, 17]).outputs);
    }

    #[test]
    fn half_engine_rejects_odd_widths_and_serves_even_ones() {
        let dev = DeviceConfig::a100_like();
        let (csr, x) = toy_graph(40);
        let cfg = ServeConfig { precision: PrecisionMode::HalfGnn, ..ServeConfig::default() };
        let odd = TwoLayerParams::new(8, 6, 3, 3);
        assert_eq!(
            ServeEngine::new(&dev, &csr, &x, 8, odd, cfg.clone()).err(),
            Some(ServeConfigError::OddWidthForHalf)
        );
        let even = TwoLayerParams::new(8, 6, 4, 3);
        let mut e = ServeEngine::new(&dev, &csr, &x, 8, even, cfg).expect("even widths serve");
        let out = e.embed(&[1, 2]);
        assert!(out.outputs.iter().flatten().all(|v| v.is_finite()));
    }
}
