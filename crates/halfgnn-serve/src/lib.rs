//! `halfgnn-serve`: forward-only GNN inference over trained half-precision
//! models.
//!
//! Training (the rest of this workspace) ends in a weight snapshot; this
//! crate is what consumes it. Four pieces:
//!
//! - [`batcher`] — coalesces concurrent embedding requests into one
//!   induced k-hop subgraph per kernel launch, **bitwise-equal** to
//!   serving each request alone (the module docs carry the proof shape).
//! - [`cache`] — a deterministic vertex-keyed LRU of final embeddings;
//!   at the same byte budget f16 entries fit exactly 2× the vertices of
//!   f32, the paper's memory headline restated for serving.
//! - [`engine`] — the closed loop: front-end cache, FIFO admission,
//!   batched forward-only dispatch (no grad/optimizer/stash buffers),
//!   remote-shard halo-fetch accounting, `DeltaCsr` edge ingestion with
//!   sound k-hop cache invalidation, and steady-state capture/replay.
//! - [`config`] — [`config::ServeConfig`] with the same die-at-config-time
//!   validation discipline as training's `TrainConfig`.
//!
//! All timing is modeled (µs from the cost and interconnect models) —
//! never wall clocks — so every number is bitwise reproducible at any
//! thread count.

pub mod batcher;
pub mod cache;
pub mod config;
pub mod engine;

pub use batcher::{coalesce, Batch};
pub use cache::{CachePrecision, CacheStats, EmbeddingCache};
pub use config::{ServeConfig, ServeConfigError, MODEL_DEPTH};
pub use engine::{ServeEngine, ServeStats, ServedBatch, CACHE_LOOKUP_US};
