//! Request coalescing: many concurrent embedding requests → one batched
//! subgraph → one kernel launch per layer.
//!
//! The bitwise contract — a coalesced batch produces *exactly* the bits
//! each request would get served alone — rests on two structural facts:
//!
//! 1. The batch runs on the **induced subgraph** of the union k-hop ball.
//!    Every vertex's local row is its global row intersected with the
//!    ball, so any vertex within `hops − ℓ` of a requested seed has a
//!    *complete* row at layer ℓ — identical to the row it has in a
//!    single-request extraction. Depth-`hops` frontier vertices have
//!    truncated rows, but their layer values are never consumed by a
//!    seed's logits (a depth-2 GCN reads layer-ℓ values only from
//!    vertices within `2 − ℓ` hops of the seed).
//! 2. Local ids are assigned in **ascending global-id order**. CSR sorts
//!    each row by column id, so a row's reduction order is its neighbors'
//!    global order — the same order no matter which other requests were
//!    coalesced in. No reduction is reassociated by batching.
//!
//! Induction of a symmetric graph is symmetric, so the batch subgraph
//! satisfies `GraphView::full`'s symmetry contract directly — no
//! re-symmetrization (which would invent reverse edges into boundary
//! rows and break fact 1).

use halfgnn_graph::reach::{induced_subgraph, khop_ball};
use halfgnn_graph::sample::NeighborAccess;
use halfgnn_graph::{Csr, VertexId};

/// One coalesced batch: the deduplicated request set and the induced
/// k-hop subgraph that serves all of them at once.
#[derive(Debug)]
pub struct Batch {
    /// Requested vertices, deduplicated, ascending.
    pub unique: Vec<VertexId>,
    /// Global ids of the subgraph's vertices, ascending — local id `i`
    /// is `ball[i]`.
    pub ball: Vec<VertexId>,
    /// Induced subgraph on `ball`, in local ids.
    pub csr: Csr,
}

impl Batch {
    /// Local row of global vertex `v` (must be in the ball).
    pub fn local_of(&self, v: VertexId) -> usize {
        self.ball.binary_search(&v).expect("vertex in ball")
    }

    /// Subgraph vertex count.
    pub fn n(&self) -> usize {
        self.ball.len()
    }

    /// Subgraph edge count.
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }
}

/// Coalesce `requests` (duplicates welcome) into one batch: dedup, take
/// the union `hops`-ball, induce. Fully deterministic.
pub fn coalesce<G: NeighborAccess>(g: &G, requests: &[VertexId], hops: usize) -> Batch {
    assert!(!requests.is_empty(), "a batch needs at least one request");
    let mut unique = requests.to_vec();
    unique.sort_unstable();
    unique.dedup();
    let ball = khop_ball(g, &unique, hops);
    let csr = induced_subgraph(g, &ball);
    Batch { unique, ball, csr }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Csr {
        let edges: Vec<(VertexId, VertexId)> = (0..n as VertexId - 1).map(|v| (v, v + 1)).collect();
        Csr::from_edges(n, n, &edges).symmetrized_with_self_loops()
    }

    #[test]
    fn coalesce_dedups_and_unions_neighborhoods() {
        let g = path(12);
        let b = coalesce(&g, &[3, 9, 3], 2);
        assert_eq!(b.unique, vec![3, 9]);
        assert_eq!(b.ball, vec![1, 2, 3, 4, 5, 7, 8, 9, 10, 11]);
        assert_eq!(b.local_of(3), 2);
        assert_eq!(b.local_of(9), 7);
        assert!(b.csr.is_symmetric());
    }

    #[test]
    fn seed_rows_are_complete_in_the_induced_subgraph() {
        let g = path(12);
        let b = coalesce(&g, &[5], 2);
        // Vertex 5's local row must list exactly its global neighbors.
        let local = b.csr.row(b.local_of(5) as VertexId);
        let global: Vec<VertexId> = local.iter().map(|&l| b.ball[l as usize]).collect();
        assert_eq!(global, g.row(5).to_vec());
        // And so must its depth-1 neighbors (their layer-1 values feed
        // the seed's logits).
        for v in [4u32, 6] {
            let local = b.csr.row(b.local_of(v) as VertexId);
            let global: Vec<VertexId> = local.iter().map(|&l| b.ball[l as usize]).collect();
            assert_eq!(global, g.row(v).to_vec(), "depth-1 vertex {v}");
        }
    }

    #[test]
    fn overlapping_requests_share_one_subgraph() {
        let g = path(12);
        let b = coalesce(&g, &[5, 6], 2);
        // Union ball of two adjacent seeds: 3..=8.
        assert_eq!(b.ball, vec![3, 4, 5, 6, 7, 8]);
    }
}
