//! Serving configuration and its named-rejection validation — the same
//! die-at-config-time discipline as `TrainConfig::validate`.

use crate::cache::CachePrecision;
use halfgnn_exec::CaptureRefused;
use halfgnn_graph::PartitionStrategy;
use halfgnn_nn::models::PrecisionMode;
use halfgnn_sim::Topology;

/// Depth of the served model (the two-layer GCN every trainer in this
/// repo produces). Request coalescing must extract at least this many
/// hops for served logits to be exact.
pub const MODEL_DEPTH: usize = 2;

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Kernel/precision system for the forward pass. Serving supports
    /// [`PrecisionMode::Float`] and [`PrecisionMode::HalfGnn`]; the
    /// training-ablation modes are rejected by [`ServeConfig::validate`].
    pub precision: PrecisionMode,
    /// Receptive-field hops extracted per request (≥ [`MODEL_DEPTH`]).
    pub hops: usize,
    /// Maximum concurrent requests coalesced into one batched launch.
    pub batch_window: usize,
    /// Embedding-cache byte budget (0 disables the cache).
    pub cache_bytes: usize,
    /// Embedding-cache entry precision — f16 fits ~2× the vertices of
    /// f32 in the same budget, the headline serving metric.
    pub cache_precision: CachePrecision,
    /// Simulated devices the feature table is sharded over.
    pub shards: usize,
    /// Interconnect wiring between the shards (ignored when `shards == 1`).
    pub topology: Topology,
    /// Vertex-to-shard assignment (ignored when `shards == 1`).
    pub partition: PartitionStrategy,
    /// Capture the first batch's kernel sequence and replay it for every
    /// later batch of the same shape (launch overhead stripped). Requires
    /// `batch_window == 1` — see [`CaptureRefused::DynamicBatchShape`].
    pub replay: bool,
    /// Route dispatch through the cost-model autotuner (serve-shaped
    /// `KernelKey`s: one per coalesced-subgraph shape bucket).
    pub tuning: bool,
    /// Seed for anything the engine randomizes (none today; traces carry
    /// their own seed).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            precision: PrecisionMode::Float,
            hops: MODEL_DEPTH,
            batch_window: 8,
            cache_bytes: 0,
            cache_precision: CachePrecision::F16,
            shards: 1,
            topology: Topology::Ring,
            partition: PartitionStrategy::Contiguous,
            replay: false,
            tuning: false,
            seed: 0,
        }
    }
}

/// A serving configuration rejected before the engine is built, by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `--hops` below the model depth: served logits would read truncated
    /// receptive fields and silently diverge from training-side outputs.
    HopsBelowModelDepth,
    /// `--batch-window 0` coalesces nothing.
    ZeroBatchWindow,
    /// `--shards 0` leaves the feature table nowhere.
    ZeroShards,
    /// `--precision halfnaive` / `nodiscretize` are training ablations
    /// (grad-bearing overflow studies), and `i8` is a training-side
    /// bandwidth optimization whose stochastic rounding would make
    /// served logits nondeterministic — none are serving modes.
    TrainingOnlyPrecision,
    /// `--replay` with `--batch-window` > 1: no steady-state kernel
    /// sequence exists to capture.
    ReplayWithDynamicBatch(CaptureRefused),
    /// Half-precision serving needs even feature/class widths (half2
    /// kernel layout); the loaded model has odd dims.
    OddWidthForHalf,
    /// The snapshot's architecture is not the two-layer GCN the serving
    /// forward path implements.
    SnapshotModelUnsupported,
    /// The snapshot's parameter count does not match its declared dims.
    SnapshotDimsMismatch,
    /// `--partition 1p5d` with a shard count the replication factor does
    /// not divide: replication groups must be whole.
    ReplicationDoesNotDivideShards,
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::HopsBelowModelDepth => write!(
                f,
                "--hops must be at least the model depth ({MODEL_DEPTH}) so served \
                 embeddings are exact"
            ),
            ServeConfigError::ZeroBatchWindow => {
                write!(f, "--batch-window must be at least 1")
            }
            ServeConfigError::ZeroShards => write!(f, "--shards must be at least 1"),
            ServeConfigError::TrainingOnlyPrecision => write!(
                f,
                "unsupported serving precision: halfnaive, nodiscretize and i8 are \
                 training-only modes; --precision must be float|halfgnn"
            ),
            ServeConfigError::ReplayWithDynamicBatch(r) => {
                write!(f, "--replay requires --batch-window 1 ({r})")
            }
            ServeConfigError::OddWidthForHalf => write!(
                f,
                "half-precision serving requires even feature and class widths \
                 (half2 layout); retrain with padded dims or serve --precision float"
            ),
            ServeConfigError::SnapshotModelUnsupported => write!(
                f,
                "snapshot model is not servable: the serving forward path implements \
                 the two-layer GCN (model gcn)"
            ),
            ServeConfigError::SnapshotDimsMismatch => write!(
                f,
                "snapshot parameter count does not match its declared dims (torn or \
                 mismatched file?)"
            ),
            ServeConfigError::ReplicationDoesNotDivideShards => {
                write!(f, "--partition 1p5d requires --shards divisible by the replication factor")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

impl ServeConfig {
    /// Reject configurations that cannot serve, with a named reason.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.hops < MODEL_DEPTH {
            return Err(ServeConfigError::HopsBelowModelDepth);
        }
        if self.batch_window == 0 {
            return Err(ServeConfigError::ZeroBatchWindow);
        }
        if self.shards == 0 {
            return Err(ServeConfigError::ZeroShards);
        }
        if matches!(
            self.precision,
            PrecisionMode::HalfNaive | PrecisionMode::HalfGnnNoDiscretize | PrecisionMode::I8
        ) {
            return Err(ServeConfigError::TrainingOnlyPrecision);
        }
        if self.replay && self.batch_window != 1 {
            return Err(ServeConfigError::ReplayWithDynamicBatch(
                CaptureRefused::DynamicBatchShape,
            ));
        }
        if self.shards > 1 && !self.shards.is_multiple_of(self.partition.replication()) {
            return Err(ServeConfigError::ReplicationDoesNotDivideShards);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ServeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn each_illegal_combination_is_named() {
        let base = ServeConfig::default;
        let cases: Vec<(ServeConfig, ServeConfigError)> = vec![
            (ServeConfig { hops: 0, ..base() }, ServeConfigError::HopsBelowModelDepth),
            (ServeConfig { hops: 1, ..base() }, ServeConfigError::HopsBelowModelDepth),
            (ServeConfig { batch_window: 0, ..base() }, ServeConfigError::ZeroBatchWindow),
            (ServeConfig { shards: 0, ..base() }, ServeConfigError::ZeroShards),
            (
                ServeConfig { precision: PrecisionMode::HalfNaive, ..base() },
                ServeConfigError::TrainingOnlyPrecision,
            ),
            (
                ServeConfig { precision: PrecisionMode::HalfGnnNoDiscretize, ..base() },
                ServeConfigError::TrainingOnlyPrecision,
            ),
            (
                ServeConfig { precision: PrecisionMode::I8, ..base() },
                ServeConfigError::TrainingOnlyPrecision,
            ),
            (
                ServeConfig { replay: true, batch_window: 4, ..base() },
                ServeConfigError::ReplayWithDynamicBatch(CaptureRefused::DynamicBatchShape),
            ),
            (
                ServeConfig { shards: 3, partition: PartitionStrategy::OneP5D { c: 2 }, ..base() },
                ServeConfigError::ReplicationDoesNotDivideShards,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want.clone()), "{cfg:?}");
            // Every error formats without panicking and is non-empty.
            assert!(!want.to_string().is_empty());
        }
        // Replay with window 1 is the legal capture shape.
        assert_eq!(
            ServeConfig { replay: true, batch_window: 1, ..ServeConfig::default() }.validate(),
            Ok(())
        );
        // 1.5D with a divisible shard count serves fine.
        assert_eq!(
            ServeConfig {
                shards: 4,
                partition: PartitionStrategy::OneP5D { c: 2 },
                ..ServeConfig::default()
            }
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn replay_error_carries_the_capture_refusal_text() {
        let err = ServeConfig { replay: true, batch_window: 2, ..ServeConfig::default() }
            .validate()
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--replay"), "{msg}");
        assert!(msg.contains("--batch-window"), "{msg}");
        assert!(msg.contains("capture refused"), "{msg}");
    }
}
