//! GAT on the Reddit stand-in: the edge-softmax pipeline (Eq. 1) built
//! from individual kernels, the shadow-API vs AMP conversion tax (§3.1.2,
//! §5.3), and end-to-end attention training.
//!
//! ```text
//! cargo run --release --example attention_reddit
//! ```

use halfgnn::graph::datasets::Dataset;
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::kernels::common::Reduce;
use halfgnn::kernels::edge_ops;
use halfgnn::kernels::halfgnn_spmm::{edge_reduce, row_offsets_of};
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};
use halfgnn::sim::DeviceConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let data = Dataset::reddit().load(42);
    let dev = DeviceConfig::a100_like();
    let coo = &data.coo;

    // ---- The edge-softmax pipeline, kernel by kernel (Eq. 1).
    let mut rng = StdRng::seed_from_u64(7);
    let logits = f32_slice_to_half(
        &(0..coo.nnz()).map(|_| rng.gen_range(-30.0f32..30.0)).collect::<Vec<_>>(),
    );
    let (m, s1) = edge_reduce(&dev, coo, &logits, Reduce::Max);
    let (num_shadow, s2) = edge_ops::sub_row_exp(&dev, coo, &logits, &m, true);
    let (_, s2_amp) = edge_ops::sub_row_exp(&dev, coo, &logits, &m, false);
    let (z, s3) = edge_reduce(&dev, coo, &num_shadow, Reduce::Sum);
    let (alpha, s4) = edge_ops::div_row(&dev, coo, &num_shadow, &z);

    println!("edge-softmax over {} edges:", coo.nnz());
    println!("  SpMM-max        {:>10.1} us", s1.time_us);
    println!("  exp (shadow)    {:>10.1} us   conversions: {}", s2.time_us, s2.totals.convert_ops);
    println!(
        "  exp (AMP)       {:>10.1} us   conversions: {}",
        s2_amp.time_us, s2_amp.totals.convert_ops
    );
    println!("  SpMM-sum        {:>10.1} us", s3.time_us);
    println!("  divide          {:>10.1} us", s4.time_us);
    println!(
        "  shadow exp saves {:.1}% of the exp kernel (§5.3)\n",
        100.0 * (1.0 - s2.time_us / s2_amp.time_us)
    );

    // Softmax property check: rows sum to 1, all finite, despite ±30 logits.
    let off = row_offsets_of(coo);
    let mut worst: f32 = 0.0;
    for r in 0..coo.num_rows() {
        if off[r] == off[r + 1] {
            continue;
        }
        let sum: f32 = alpha[off[r]..off[r + 1]].iter().map(|h| h.to_f32()).sum();
        worst = worst.max((sum - 1.0).abs());
        assert!(alpha[off[r]..off[r + 1]].iter().all(|h| h.is_finite()));
    }
    println!("attention rows sum to 1 within {worst:.4} in half precision\n");

    // ---- End-to-end single-head GAT training.
    println!("training GAT (single head, hidden 64):");
    for (name, precision) in
        [("DGL-float", PrecisionMode::Float), ("HalfGNN", PrecisionMode::HalfGnn)]
    {
        let cfg =
            TrainConfig { model: ModelKind::Gat, precision, epochs: 60, ..TrainConfig::default() };
        let r = train(&data, &cfg);
        println!(
            "  {:<10} train acc {:.3}  epoch {:>9.1} us  conversions/epoch {}",
            name, r.final_train_accuracy, r.epoch_time_us, r.conversions_per_epoch
        );
    }
}
