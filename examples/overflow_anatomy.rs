//! Anatomy of the FP16 overflow (§3.1.3 / §5.2.2): run one SpMM over a hub
//! graph under every scaling placement and watch where INF appears — then
//! train DGL-half vs HalfGNN on the Reddit stand-in to see the downstream
//! NaN collapse of Fig. 1c.
//!
//! ```text
//! cargo run --release --example overflow_anatomy
//! ```

use halfgnn::graph::datasets::Dataset;
use halfgnn::graph::{Coo, Csr};
use halfgnn::half::slice::count_non_finite;
use halfgnn::half::Half;
use halfgnn::kernels::common::{row_scales_mean, EdgeWeights, ScalePlacement};
use halfgnn::kernels::halfgnn_spmm::{spmm, SpmmConfig};
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};
use halfgnn::sim::DeviceConfig;

fn main() {
    // ---- Part 1: one hub row, every scaling placement.
    let hub_degree = 2_000u32;
    let edges: Vec<(u32, u32)> = (1..=hub_degree).map(|c| (0u32, c)).collect();
    let g = Coo::from_edges(hub_degree as usize + 1, hub_degree as usize + 1, &edges);
    let f = 8;
    // Each neighbor contributes ~60: the exact hub sum is 120,000 > 65,504.
    let x = vec![Half::from_f32(60.0); (hub_degree as usize + 1) * f];
    let degrees = Csr::from_coo(&g).degrees();
    let scale = row_scales_mean(&degrees);
    let dev = DeviceConfig::a100_like();

    println!("hub degree {hub_degree}, |x| = 60 -> exact row sum 120000 (FP16 max = 65504)\n");
    println!("{:<18} {:>14} {:>12}", "scaling", "hub mean[0]", "INF lanes");
    for (name, placement) in [
        ("post-reduction", ScalePlacement::PostReduction),
        ("pre-reduction", ScalePlacement::PreReduction),
        ("discretized", ScalePlacement::Discretized),
    ] {
        let cfg = SpmmConfig { scaling: placement, ..Default::default() };
        let (y, _) = spmm(&dev, &g, EdgeWeights::Ones, &x, f, Some(&scale), &cfg);
        println!("{:<18} {:>14} {:>12}", name, format!("{}", y[0]), count_non_finite(&y[..f]));
    }
    println!("\npost-reduction scaling arrives after the overflow; discretized");
    println!("scaling normalizes every 64-edge batch and never sees INF (§5.2.2).\n");

    // ---- Part 2: the downstream training collapse (Fig. 1c).
    let data = Dataset::reddit().load(42);
    println!(
        "Reddit stand-in: {} vertices, {} edges, max degree {}\n",
        data.num_vertices(),
        data.num_edges(),
        data.adj.max_degree()
    );
    for model in [ModelKind::Gcn, ModelKind::Gin] {
        for (name, precision) in
            [("DGL-half", PrecisionMode::HalfNaive), ("HalfGNN", PrecisionMode::HalfGnn)]
        {
            let cfg = TrainConfig { model, precision, epochs: 15, ..TrainConfig::default() };
            let r = train(&data, &cfg);
            println!(
                "{:?} / {:<9}  final loss {:>8.3}  train acc {:>6.3}  NaN at {}",
                model,
                name,
                r.losses.last().unwrap(),
                r.final_train_accuracy,
                r.nan_epoch.map_or("never".to_string(), |e| format!("epoch {e}")),
            );
        }
    }
}
