//! A tour of the SIMT cost-model simulator: write a custom warp-level
//! kernel against the charging API and watch how design choices — scalar
//! half vs half2 vs half8 loads, shuffle rounds, atomics — change the
//! modeled time. This is the substrate every HalfGNN kernel is built on.
//!
//! ```text
//! cargo run --release --example simulator_tour
//! ```

use halfgnn::sim::launch::{launch, LaunchParams};
use halfgnn::sim::memory::AddrSpace;
use halfgnn::sim::{AtomicKind, DeviceConfig, KernelStats};

/// A toy streaming kernel: every warp loads `elems` halves of feature data
/// with the chosen per-thread load width, does one FMA per half2, and
/// reduces with `rounds` shuffle rounds.
fn streaming_kernel(
    dev: &DeviceConfig,
    name: &str,
    load_bytes: usize,
    rounds: u64,
    atomics: u64,
) -> KernelStats {
    let elems_per_warp = 4096usize; // halves
    let num_ctas = 512;
    let mut space = AddrSpace::new();
    let base = space.alloc(elems_per_warp * num_ctas * 4, 2);
    let (_, stats) = launch(dev, name, LaunchParams { num_ctas, warps_per_cta: 4 }, |cta| {
        let cta_id = cta.id;
        for wi in 0..4 {
            let mut warp = cta.warp(wi);
            let addr = base + ((cta_id * 4 + wi) * elems_per_warp * 2) as u64;
            // One warp instruction covers 32 threads x `load_bytes`.
            warp.load_contiguous(addr, elems_per_warp * 2 / load_bytes, load_bytes);
            warp.half2_ops((elems_per_warp as u64 / 2).div_ceil(32));
            warp.shuffle_rounds(rounds);
            if atomics > 0 {
                warp.atomic_add(AtomicKind::F16, atomics, 1.0);
            }
            warp.store_contiguous(addr, elems_per_warp / 2, 4);
        }
    });
    stats
}

fn show(s: &KernelStats) {
    println!(
        "{:<28} {:>9.1} us   BW {:>5.1}%   SM {:>5.1}%   {:>8} load instrs",
        s.name, s.time_us, s.mem_bw_utilization, s.sm_utilization, s.totals.load_instrs
    );
}

fn main() {
    let dev = DeviceConfig::a100_like();
    println!(
        "device: {} ({} SMs, {:.0} GB/s)\n",
        dev.name,
        dev.num_sms,
        dev.dram_bytes_per_cycle * dev.clock_ghz
    );

    println!("--- load width (the paper's §4.1 coalescing story) ---");
    show(&streaming_kernel(&dev, "scalar half (2 B/thread)", 2, 0, 0));
    show(&streaming_kernel(&dev, "half2 (4 B/thread)", 4, 0, 0));
    show(&streaming_kernel(&dev, "half4 / float2 (8 B)", 8, 0, 0));
    show(&streaming_kernel(&dev, "half8 / float4 (16 B)", 16, 0, 0));

    println!("\n--- reduction rounds (the §5.1 SDDMM story) ---");
    for rounds in [0u64, 64, 320] {
        show(&streaming_kernel(&dev, &format!("half2 + {rounds} shuffles"), 4, rounds, 0));
    }

    println!("\n--- atomics (the §5.2.3 conflict-write story) ---");
    for atomics in [0u64, 32, 128] {
        show(&streaming_kernel(&dev, &format!("half2 + {atomics} f16 atomics"), 4, 0, atomics));
    }

    println!("\nEvery HalfGNN kernel and baseline is written against exactly this");
    println!("API: functional work on slices, hardware actions charged per warp.");
}
