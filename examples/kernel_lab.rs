//! Kernel laboratory: run the HalfGNN kernels and every baseline on one
//! graph and print the modeled performance counters side by side — the
//! numbers behind Figs. 9–14.
//!
//! ```text
//! cargo run --release --example kernel_lab [dataset]
//! ```

use halfgnn::graph::datasets::Dataset;
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::kernels::baseline::{cusparse, dgl_sddmm, ge_spmm};
use halfgnn::kernels::common::{EdgeWeights, ScalePlacement, VectorWidth, WriteStrategy};
use halfgnn::kernels::{halfgnn_sddmm, halfgnn_spmm, huang};
use halfgnn::sim::{DeviceConfig, KernelStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn show(label: &str, s: &KernelStats) {
    println!(
        "{:<26} {:>10.1} us  BW {:>5.1}%  SM {:>5.1}%  {:>7} MiB moved  atomics {:>8}",
        label,
        s.time_us,
        s.mem_bw_utilization,
        s.sm_utilization,
        s.dram_bytes() / (1024 * 1024),
        s.totals.atomics_f32 + s.totals.atomics_f16,
    );
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hollywood09".into());
    let data = Dataset::by_id(&name).expect("unknown dataset (try G4..G16 or a name)").load(42);
    let dev = DeviceConfig::a100_like();
    let f = 64;
    println!(
        "{}: {} vertices, {} edges, mean degree {:.1}, max degree {}\n",
        data.spec.name,
        data.num_vertices(),
        data.num_edges(),
        data.adj.mean_degree(),
        data.adj.max_degree()
    );

    let mut rng = StdRng::seed_from_u64(3);
    let xf: Vec<f32> = (0..data.num_vertices() * f).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let xh = f32_slice_to_half(&xf);
    let wf: Vec<f32> = (0..data.num_edges()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let wh = f32_slice_to_half(&wf);

    println!("--- SpMMve (F = {f}) ---");
    let none = halfgnn_spmm::SpmmConfig { scaling: ScalePlacement::None, ..Default::default() };
    let (_, s) = halfgnn_spmm::spmm(&dev, &data.coo, EdgeWeights::Values(&wh), &xh, f, None, &none);
    show("HalfGNN (staged)", &s);
    let (_, s) = halfgnn_spmm::spmm(
        &dev,
        &data.coo,
        EdgeWeights::Values(&wh),
        &xh,
        f,
        None,
        &halfgnn_spmm::SpmmConfig { writes: WriteStrategy::Atomic, ..none },
    );
    show("HalfGNN (atomic ablation)", &s);
    let (_, s) = cusparse::spmm_half(&dev, &data.coo, EdgeWeights::Values(&wh), &xh, f, None);
    show("cuSPARSE-half (DGL-half)", &s);
    let (_, s) =
        cusparse::spmm_float(&dev, &data.coo, cusparse::EdgeWeightsF32::Values(&wf), &xf, f, None);
    show("cuSPARSE-float", &s);
    let (_, s) = ge_spmm::spmm_float(&dev, &data.adj, &xf, f);
    show("GE-SpMM (vertex-par f32)", &s);
    let (_, s) = huang::spmm_float(&dev, &data.adj, cusparse::EdgeWeightsF32::Ones, &xf, f);
    show("Huang-float", &s);
    let (_, s) = huang::spmm_half2(&dev, &data.adj, EdgeWeights::Ones, &xh, f);
    show("Huang-half2 (§5.4)", &s);

    println!("\n--- SDDMM (F = {f}) ---");
    let uh = f32_slice_to_half(&xf);
    for width in [VectorWidth::Half2, VectorWidth::Half4, VectorWidth::Half8] {
        let (_, s) = halfgnn_sddmm::sddmm(&dev, &data.coo, &uh, &xh, f, width);
        show(&format!("HalfGNN {width:?}"), &s);
    }
    let (_, s) = dgl_sddmm::sddmm_half(&dev, &data.coo, &uh, &xh, f);
    show("DGL-half", &s);
    let (_, s) = dgl_sddmm::sddmm_float(&dev, &data.coo, &xf, &xf, f);
    show("DGL-float", &s);
}
