//! Quickstart: train a GCN on the Cora stand-in under all three systems
//! and compare accuracy, modeled epoch time, and peak memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use halfgnn::graph::datasets::Dataset;
use halfgnn::nn::trainer::{train, ModelKind, PrecisionMode, TrainConfig};

fn main() {
    let data = Dataset::cora().load(42);
    println!(
        "Cora stand-in: {} vertices, {} edges, {} input features, {} classes\n",
        data.num_vertices(),
        data.num_edges(),
        data.spec.feat,
        data.spec.classes
    );

    println!(
        "{:<22} {:>9} {:>9} {:>12} {:>10} {:>8}",
        "system", "train acc", "test acc", "epoch (us)", "mem (MiB)", "NaN?"
    );
    for (name, precision) in [
        ("DGL-float", PrecisionMode::Float),
        ("DGL-half (naive)", PrecisionMode::HalfNaive),
        ("HalfGNN", PrecisionMode::HalfGnn),
    ] {
        let cfg =
            TrainConfig { model: ModelKind::Gcn, precision, epochs: 60, ..TrainConfig::default() };
        let r = train(&data, &cfg);
        println!(
            "{:<22} {:>9.3} {:>9.3} {:>12.1} {:>10.1} {:>8}",
            name,
            r.final_train_accuracy,
            r.test_accuracy,
            r.epoch_time_us,
            r.peak_memory_bytes as f64 / (1024.0 * 1024.0),
            r.nan_epoch.map_or("-".to_string(), |e| format!("ep{e}")),
        );
    }
    println!("\nCora has no overflow-grade hubs, so naive half survives here;");
    println!("run the `overflow_anatomy` example to see where it breaks.");
}
