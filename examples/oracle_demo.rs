//! The differential-testing oracle in action: check a healthy kernel and
//! an overflowing one against the f64 serial reference, and read the
//! structured divergence report each produces.
//!
//! Run with: `cargo run --release --example oracle_demo`

use halfgnn::graph::{gen, Csr};
use halfgnn::half::slice::f32_slice_to_half;
use halfgnn::kernels::common::{row_scales_mean, EdgeWeights};
use halfgnn::kernels::halfgnn_spmm::SpmmConfig;
use halfgnn::kernels::oracle::{check_cusparse_spmm_half, check_spmm, Tolerance};
use halfgnn::sim::DeviceConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let dev = DeviceConfig::a100_like();

    // A skewed graph with a genuine hub: vertex 0 sees every other vertex.
    let n = 600;
    let mut edges: Vec<(u32, u32)> = gen::preferential_attachment(n, 4, 7);
    edges.extend((1..n as u32).map(|v| (0, v)));
    let csr = Csr::from_edges(n, n, &edges).symmetrized_with_self_loops();
    let coo = csr.to_coo();
    let f = 32;

    let mut rng = StdRng::seed_from_u64(1);
    let x =
        f32_slice_to_half(&(0..n * f).map(|_| rng.gen_range(100.0f32..400.0)).collect::<Vec<_>>());

    // 1. HalfGNN SpMM with discretized mean scaling: the hub row stays in
    //    FP16 range, so the report is clean.
    let scales = row_scales_mean(&csr.degrees());
    let (_, _, report) = check_spmm(
        &dev,
        &coo,
        EdgeWeights::Ones,
        &x,
        f,
        Some(&scales),
        &SpmmConfig::default(),
        Tolerance::half_default(),
    );
    println!("discretized HalfGNN SpMM:\n  {report}\n");
    assert!(report.is_ok(), "discretized SpMM must match the reference");

    // 2. The cuSPARSE-style FP16 baseline sums the hub row un-scaled: the
    //    reduction leaves binary16 range and the report pins the blast
    //    site — row, degree, and the NON-FINITE flag.
    let (_, _, report) = check_cusparse_spmm_half(
        &dev,
        &coo,
        EdgeWeights::Ones,
        &x,
        f,
        None,
        Tolerance::half_default(),
    );
    println!("naive FP16 baseline on the same graph:\n  {report}");
    assert!(!report.is_ok(), "the hub row must overflow the naive baseline");
    let first = report.first.as_ref().unwrap();
    assert!(first.got_nonfinite_ref_finite, "overflow shows as NON-FINITE vs finite f64");
}
